/// B11 -- Sharded serving tier.
///
/// Drives ShardRouter end to end over Zipf-skewed request mixes (hot
/// owners dominate, the way social traffic does) and reports, next to
/// the latency series, the router's own counters:
///
///  * summary_hit_rate — fraction of cross-shard checks the boundary
///    summaries resolved without any frontier exchange. The acceptance
///    criterion for the subsystem is >= 0.80 on the fresh-summary
///    series (BM_ShardCheckAccess / BM_ShardCheckBatch).
///  * fallback_rounds_per_walk — mean frontier-exchange rounds when the
///    fallback does run (the dirty-shard series BM_ShardDirtyChurn
///    forces it by mutating without RefreshSummaries()).
///  * cross_share — fraction of checks that needed the cross-shard
///    machinery at all (the rest were answered owner-locally).
///
/// BM_ShardSummaryRefresh prices the summaries themselves: the full
/// per-shard product-SCC + restricted 2-hop rebuild.
///
/// Robustness series (PR 7): BM_ShardDirectCall / BM_ShardTransportCall
/// price the fault-free transport seam (the acceptance bar is the
/// transport staying within ~5% of direct engine calls), and
/// BM_ShardFaultInjection runs the full retry / breaker / degraded
/// machinery under a seeded fault storm, reporting the robustness
/// counters next to the latency.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace sargus {
namespace bench {
namespace {

constexpr size_t kNodes = 2000;
constexpr size_t kResources = 64;
constexpr double kTheta = 0.8;

struct ShardedFixture {
  std::unique_ptr<SocialGraph> graph;
  std::unique_ptr<PolicyStore> store;
  std::unique_ptr<ShardRouter> router;
  std::vector<ResourceId> resources;
};

std::unique_ptr<ShardedFixture> MakeFixture(
    uint32_t shards, bool build_summaries,
    FaultInjectionTransport** fault = nullptr) {
  auto f = std::make_unique<ShardedFixture>();
  f->graph = std::make_unique<SocialGraph>(
      MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, /*seed=*/17));
  f->store = std::make_unique<PolicyStore>();
  // Hot owners: resource ownership is itself Zipf-skewed over the node
  // space, so the request mix concentrates on a few popular owners.
  ZipfSampler owners(kNodes, kTheta, 99);
  const std::vector<std::vector<std::string>> rule_sets = {
      {"friend[1,2]"},
      {"friend[1,2]/colleague[1]"},
      {"colleague[1,3]"},
  };
  for (size_t i = 0; i < kResources; ++i) {
    const ResourceId r = f->store->RegisterResource(
        static_cast<NodeId>(owners.Next()), "res" + std::to_string(i));
    if (!f->store->AddRuleFromPaths(r, rule_sets[i % rule_sets.size()]).ok()) {
      return nullptr;
    }
    f->resources.push_back(r);
  }
  RouterOptions opts;
  opts.partition.num_shards = shards;
  // Contiguous ranges ignore community structure on purpose: they cut
  // straight through the BA core, which is what makes the cross-shard
  // machinery (summaries, fallback) actually carry traffic here.
  opts.partition.strategy = PartitionStrategy::kContiguous;
  opts.build_summaries = build_summaries;
  if (fault != nullptr) {
    opts.transport_decorator =
        [fault](std::unique_ptr<ShardTransport> inner)
        -> std::unique_ptr<ShardTransport> {
      auto t =
          std::make_unique<FaultInjectionTransport>(std::move(inner), 0xFA17);
      *fault = t.get();
      return t;
    };
  }
  f->router = std::make_unique<ShardRouter>(*f->graph, *f->store, opts);
  if (!f->router->Build().ok()) return nullptr;
  return f;
}

void ReportCounters(benchmark::State& state, const RouterCounters& before,
                    const RouterCounters& after) {
  const double cross =
      static_cast<double>(after.cross_shard_checks - before.cross_shard_checks);
  const double checks = static_cast<double>(after.checks - before.checks);
  const double fallback_checks = static_cast<double>(
      after.cross_fallback_walks - before.cross_fallback_walks);
  const double walks =
      static_cast<double>(after.fallback_walks - before.fallback_walks);
  const double rounds =
      static_cast<double>(after.fallback_rounds - before.fallback_rounds);
  state.counters["cross_share"] = checks > 0 ? cross / checks : 0.0;
  state.counters["summary_hit_rate"] =
      cross > 0 ? 1.0 - fallback_checks / cross : 1.0;
  state.counters["fallback_rounds_per_walk"] = walks > 0 ? rounds / walks : 0.0;
  // Robustness counters (all zero on a fault-free transport).
  state.counters["retries"] =
      static_cast<double>(after.retries - before.retries);
  state.counters["timeouts"] =
      static_cast<double>(after.timeouts - before.timeouts);
  state.counters["breaker_opens"] =
      static_cast<double>(after.breaker_opens - before.breaker_opens);
  state.counters["degraded_answers"] =
      static_cast<double>(after.degraded_answers - before.degraded_answers);
  state.counters["unavailable_errors"] =
      static_cast<double>(after.unavailable_errors - before.unavailable_errors);
}

void BM_ShardCheckAccess(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  auto f = MakeFixture(shards, /*build_summaries=*/true);
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  ZipfSampler requesters(kNodes, kTheta, 7);
  ZipfSampler targets(kResources, kTheta, 8);
  const RouterCounters before = f->router->counters();
  for (auto _ : state) {
    AccessRequest req;
    req.requester = static_cast<NodeId>(requesters.Next());
    req.resource = f->resources[targets.Next()];
    auto d = f->router->CheckAccess(req);
    benchmark::DoNotOptimize(d);
  }
  ReportCounters(state, before, f->router->counters());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardCheckAccess)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ShardCheckBatch(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  constexpr size_t kBatch = 64;
  auto f = MakeFixture(shards, /*build_summaries=*/true);
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  ZipfSampler requesters(kNodes, kTheta, 7);
  ZipfSampler targets(kResources, kTheta, 8);
  std::vector<AccessRequest> batch(kBatch);
  const RouterCounters before = f->router->counters();
  for (auto _ : state) {
    for (auto& req : batch) {
      req.requester = static_cast<NodeId>(requesters.Next());
      req.resource = f->resources[targets.Next()];
    }
    auto decisions = f->router->CheckAccessBatch(batch);
    benchmark::DoNotOptimize(decisions);
  }
  ReportCounters(state, before, f->router->counters());
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ShardCheckBatch)->Arg(1)->Arg(4)->Arg(8);

/// Dirty-shard series: a mutation every k checks, never refreshing the
/// summaries — every cross-shard check after the first mutation takes
/// the frontier-exchange fallback. Prices the conservatism.
void BM_ShardDirtyChurn(benchmark::State& state) {
  const auto checks_per_mutation = static_cast<size_t>(state.range(0));
  auto f = MakeFixture(4, /*build_summaries=*/true);
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  ZipfSampler requesters(kNodes, kTheta, 7);
  ZipfSampler targets(kResources, kTheta, 8);
  Rng rng(21);
  const RouterCounters before = f->router->counters();
  size_t since_mutation = 0;
  for (auto _ : state) {
    if (++since_mutation >= checks_per_mutation) {
      since_mutation = 0;
      const NodeId a = static_cast<NodeId>(rng.NextBounded(kNodes));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(kNodes));
      if (a != b) (void)f->router->AddEdge(a, b, "friend");
    }
    AccessRequest req;
    req.requester = static_cast<NodeId>(requesters.Next());
    req.resource = f->resources[targets.Next()];
    auto d = f->router->CheckAccess(req);
    benchmark::DoNotOptimize(d);
  }
  ReportCounters(state, before, f->router->counters());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardDirtyChurn)->Arg(16)->Arg(256);

/// Full summary rebuild across all shards (product SCC + condensation +
/// restricted 2-hop per rule path per shard).
void BM_ShardSummaryRefresh(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  auto f = MakeFixture(shards, /*build_summaries=*/true);
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  for (auto _ : state) {
    if (!f->router->RefreshSummaries().ok()) {
      state.SkipWithError("refresh failed");
      return;
    }
  }
}
BENCHMARK(BM_ShardSummaryRefresh)->Arg(2)->Arg(8);

/// Fault-free transport overhead pair. Both series drive the same
/// single-shard engine with the same Zipf request stream; the only
/// difference is whether the call goes straight into ShardEngine::Check
/// or through the InProcessTransport seam (virtual dispatch + deadline
/// bookkeeping, no framing). Acceptance bar for the seam:
/// BM_ShardTransportCall stays within ~5% of BM_ShardDirectCall.
void BM_ShardDirectCall(benchmark::State& state) {
  auto f = MakeFixture(1, /*build_summaries=*/true);
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  ZipfSampler requesters(kNodes, kTheta, 7);
  ZipfSampler targets(kResources, kTheta, 8);
  for (auto _ : state) {
    wire::CheckRequest req;
    req.requester = static_cast<NodeId>(requesters.Next());
    req.resource = f->resources[targets.Next()];
    auto reply = f->router->shard(0).Check(req);
    benchmark::DoNotOptimize(reply);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardDirectCall);

void BM_ShardTransportCall(benchmark::State& state) {
  auto f = MakeFixture(1, /*build_summaries=*/true);
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  InProcessTransport transport({&f->router->shard(0)});
  const TransportCallOptions no_deadline;
  ZipfSampler requesters(kNodes, kTheta, 7);
  ZipfSampler targets(kResources, kTheta, 8);
  for (auto _ : state) {
    wire::CheckRequest req;
    req.requester = static_cast<NodeId>(requesters.Next());
    req.resource = f->resources[targets.Next()];
    auto reply = transport.Check(0, req, no_deadline);
    benchmark::DoNotOptimize(reply);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardTransportCall);

/// The robust path under a seeded probabilistic fault storm: every
/// shard's transport randomly delays, drops, errors, or corrupts.
/// Latency here includes retries, backoff, and degraded composition
/// (all sleeps and delays land on the decorator's virtual clock, so
/// wall time measures real work, not waiting). The robustness counters
/// from ReportCounters show what the storm cost; refused_share is the
/// fraction of checks that ended in an explicit transport error rather
/// than an exact answer.
void BM_ShardFaultInjection(benchmark::State& state) {
  FaultInjectionTransport* fault = nullptr;
  auto f = MakeFixture(4, /*build_summaries=*/true, &fault);
  if (f == nullptr || fault == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  ShardFaultProfile storm;
  storm.delay_probability = 0.05;
  storm.drop_probability = 0.02;
  storm.error_probability = 0.01;
  storm.corrupt_probability = 0.01;
  storm.delay_min_ms = 1;
  storm.delay_max_ms = 10;
  for (uint32_t s = 0; s < 4; ++s) fault->SetProfile(s, storm);
  ZipfSampler requesters(kNodes, kTheta, 7);
  ZipfSampler targets(kResources, kTheta, 8);
  const RouterCounters before = f->router->counters();
  uint64_t refused = 0;
  for (auto _ : state) {
    AccessRequest req;
    req.requester = static_cast<NodeId>(requesters.Next());
    req.resource = f->resources[targets.Next()];
    auto d = f->router->CheckAccess(req);
    if (!d.ok()) ++refused;
    benchmark::DoNotOptimize(d);
  }
  ReportCounters(state, before, f->router->counters());
  state.counters["refused_share"] =
      state.iterations() > 0
          ? static_cast<double>(refused) / static_cast<double>(state.iterations())
          : 0.0;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardFaultInjection);

/// Scatter-gather fan-out series (PR 8): the same grant-heavy batch
/// through a serial-transport router and a thread-per-shard
/// (ThreadedTransport) router, at each shard count. The workload is
/// deliberately settled entirely by the per-shard sub-batches — every
/// slot is an owner-shard-local grant — so the measurement isolates
/// what the executor buys: with S shards the sub-batches run on S
/// worker threads instead of one after another.
///
/// The measured series (manual time) is the THREADED batch;
/// speedup_threaded_vs_serial is the serial/threaded wall ratio from
/// the same iterations. Acceptance: >= 2x at 4 shards on a multi-core
/// runner (the ratio degrades toward ~1x on a single hardware thread,
/// where concurrency cannot buy wall time — the CI runners are where
/// this counter is judged).
constexpr size_t kFanBatch = 1024;

struct FanOutFixture {
  std::unique_ptr<SocialGraph> serial_graph;
  std::unique_ptr<SocialGraph> threaded_graph;
  std::unique_ptr<PolicyStore> store;
  std::unique_ptr<ShardRouter> serial;
  std::unique_ptr<ShardRouter> threaded;
  std::vector<AccessRequest> batch;
};

std::unique_ptr<FanOutFixture> MakeFanOutFixture(uint32_t shards) {
  auto f = std::make_unique<FanOutFixture>();
  f->serial_graph = std::make_unique<SocialGraph>(
      MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, /*seed=*/29));
  f->threaded_graph = std::make_unique<SocialGraph>(*f->serial_graph);
  f->store = std::make_unique<PolicyStore>();
  Rng rng(0xFA40);
  std::vector<ResourceId> res;
  for (size_t i = 0; i < kResources; ++i) {
    const ResourceId r = f->store->RegisterResource(
        static_cast<NodeId>(rng.NextBounded(kNodes)),
        "res" + std::to_string(i));
    if (!f->store->AddRuleFromPaths(r, {"friend[1,2]"}).ok()) return nullptr;
    res.push_back(r);
  }

  RouterOptions base;
  base.partition.num_shards = shards;
  base.partition.strategy = PartitionStrategy::kContiguous;
  // No per-attempt deadlines: a backed-up queue under full fan-out load
  // must not turn into spurious timeouts that change the work done.
  base.robustness.call_deadline_ms = 0;
  base.robustness.op_budget_ms = 0;
  RouterOptions threaded_opts = base;
  threaded_opts.threaded_transport = true;
  f->serial =
      std::make_unique<ShardRouter>(*f->serial_graph, *f->store, base);
  if (!f->serial->Build().ok()) return nullptr;
  f->threaded = std::make_unique<ShardRouter>(*f->threaded_graph, *f->store,
                                              threaded_opts);
  if (!f->threaded->Build().ok()) return nullptr;

  // Plant same-shard friend edges from every owner (mirrored into both
  // routers) and draw requesters from those pools: every batch slot is
  // granted inside its owner's shard, so no slot escalates to the
  // serial cross-shard machinery.
  const auto topo = f->serial->topology();
  std::vector<std::vector<NodeId>> pools(res.size());
  for (size_t i = 0; i < res.size(); ++i) {
    const NodeId owner = f->store->resource(res[i]).owner;
    const uint32_t home = topo->shard_of[owner];
    for (int tries = 0; tries < 400 && pools[i].size() < 8; ++tries) {
      const NodeId cand = static_cast<NodeId>(rng.NextBounded(kNodes));
      if (cand == owner || topo->shard_of[cand] != home) continue;
      if (!f->serial->AddEdge(owner, cand, "friend").ok()) return nullptr;
      if (!f->threaded->AddEdge(owner, cand, "friend").ok()) return nullptr;
      pools[i].push_back(cand);
    }
    if (pools[i].empty()) return nullptr;
  }
  for (size_t i = 0; i < kFanBatch; ++i) {
    const size_t r = i % res.size();
    f->batch.push_back(
        {.requester = pools[r][i % pools[r].size()], .resource = res[r]});
  }
  return f;
}

void BM_ShardBatchFanOut(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  auto f = MakeFanOutFixture(shards);
  if (f == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  using Clock = std::chrono::steady_clock;
  double serial_sec = 0.0;
  double threaded_sec = 0.0;
  for (auto _ : state) {
    const auto t0 = Clock::now();
    auto sd = f->serial->CheckAccessBatch(f->batch);
    const auto t1 = Clock::now();
    auto td = f->threaded->CheckAccessBatch(f->batch);
    const auto t2 = Clock::now();
    benchmark::DoNotOptimize(sd);
    benchmark::DoNotOptimize(td);
    const double s = std::chrono::duration<double>(t1 - t0).count();
    const double t = std::chrono::duration<double>(t2 - t1).count();
    serial_sec += s;
    threaded_sec += t;
    state.SetIterationTime(t);
  }
  state.counters["speedup_threaded_vs_serial"] =
      threaded_sec > 0.0 ? serial_sec / threaded_sec : 0.0;
  state.counters["serial_batch_ms"] =
      state.iterations() > 0
          ? 1e3 * serial_sec / static_cast<double>(state.iterations())
          : 0.0;
  state.counters["threaded_batch_ms"] =
      state.iterations() > 0
          ? 1e3 * threaded_sec / static_cast<double>(state.iterations())
          : 0.0;
  state.SetItemsProcessed(state.iterations() * kFanBatch);
}
BENCHMARK(BM_ShardBatchFanOut)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime();

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
