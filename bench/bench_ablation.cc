/// B6 -- Ablations of the design choices DESIGN.md calls out.
///
///  * faithful post-filter joins (paper §3.3/§3.4, reachability joins +
///    post-processing) vs the optimized adjacency joins;
///  * early endpoint anchoring vs the paper's post-processing-only
///    endpoint check;
///  * 2-hop construction strategy: pruned landmark vs greedy max-cover
///    (Cheng-style) -- build time and labeling size;
///  * DAG oracle: interval labels vs 2-hop labels at query time;
///  * transitive-closure prefilter on unreachable (fast-deny) workloads.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/closure_prefilter.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"

namespace sargus {
namespace bench {
namespace {

constexpr const char* kQ1 = "friend[1,2]/colleague[1]";

void RunJoinMode(benchmark::State& state, bool faithful, bool anchor_early,
                 size_t nodes) {
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert, nodes);
  const BoundPathExpression& expr = GetExpr(p, kQ1);
  const auto& pairs = GetPairs(p, expr);
  JoinIndexOptions opts;
  opts.faithful_post_filter = faithful;
  opts.anchor_endpoints_early = anchor_early;
  opts.max_intermediate_tuples = size_t{1} << 24;
  JoinIndexEvaluator eval(*p.g, p.lg, *p.oracle, *p.cluster_index, p.tables,
                          opts);
  size_t i = 0;
  uint64_t tuples = 0, filtered = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    ReachQuery q{src, dst, &expr, false};
    auto r = eval.Evaluate(q);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    tuples += r->stats.tuples_generated;
    filtered += r->stats.tuples_post_filtered;
    benchmark::DoNotOptimize(r->granted);
  }
  state.counters["tuples"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kAvgIterations);
  state.counters["post_filtered"] = benchmark::Counter(
      static_cast<double>(filtered), benchmark::Counter::kAvgIterations);
}

void BM_JoinAdjacency(benchmark::State& state) {
  RunJoinMode(state, false, true, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_JoinAdjacency)->Arg(2000)->Arg(8000);

void BM_JoinFaithfulAnchored(benchmark::State& state) {
  RunJoinMode(state, true, true, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_JoinFaithfulAnchored)->Arg(2000)->Arg(8000);

/// The paper defers the owner/requester check to post-processing; on
/// anything beyond toy graphs the unanchored join materializes the whole
/// label-pair join per query. Kept at small sizes deliberately.
void BM_JoinFaithfulUnanchored(benchmark::State& state) {
  RunJoinMode(state, true, false, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_JoinFaithfulUnanchored)->Arg(50)->Arg(100)->Arg(200);

// ---- 2-hop construction strategies -----------------------------------------

void BM_TwoHopPrunedLandmark(benchmark::State& state) {
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert,
                                  static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TwoHopOptions opts;
    opts.strategy = TwoHopStrategy::kPrunedLandmark;
    auto lab = TwoHopLabeling::Build(p.oracle->dag(), opts);
    if (!lab.ok()) {
      state.SkipWithError(lab.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(lab->LabelingSize());
    state.counters["labeling_size"] =
        static_cast<double>(lab->LabelingSize());
  }
}
BENCHMARK(BM_TwoHopPrunedLandmark)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_TwoHopGreedyMaxCover(benchmark::State& state) {
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert,
                                  static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TwoHopOptions opts;
    opts.strategy = TwoHopStrategy::kGreedyMaxCover;
    opts.max_vertices_for_greedy = 1 << 20;
    auto lab = TwoHopLabeling::Build(p.oracle->dag(), opts);
    if (!lab.ok()) {
      state.SkipWithError(lab.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(lab->LabelingSize());
    state.counters["labeling_size"] =
        static_cast<double>(lab->LabelingSize());
  }
}
BENCHMARK(BM_TwoHopGreedyMaxCover)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- Oracle mode at query time ----------------------------------------------

void BM_OracleMode(benchmark::State& state) {
  const bool use_two_hop = state.range(0) == 1;
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert, 8000);
  Rng rng(5);
  const size_t n = p.lg.NumVertices();
  std::vector<std::pair<LineVertexId, LineVertexId>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(static_cast<LineVertexId>(rng.NextBounded(n)),
                       static_cast<LineVertexId>(rng.NextBounded(n)));
  }
  OracleMode mode = use_two_hop ? OracleMode::kTwoHop : OracleMode::kIntervals;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(p.oracle->ReachableVia(u, v, mode));
  }
  state.SetLabel(use_two_hop ? "2-hop labels" : "interval labels");
}
BENCHMARK(BM_OracleMode)->Arg(0)->Arg(1);

// ---- Closure prefilter on guaranteed-unreachable workloads -------------------

void BM_UnreachableDeny(benchmark::State& state) {
  const bool prefilter = state.range(0) == 1;
  // Two disconnected communities: requesters from the other side.
  static std::unique_ptr<SocialGraph> g;
  static std::unique_ptr<Pipeline> pipe;
  if (g == nullptr) {
    g = std::make_unique<SocialGraph>(
        MakeGraph(GraphKind::kBarabasiAlbert, 8000, 3, 42));
    size_t offset = g->NumNodes();
    SocialGraph other = MakeGraph(GraphKind::kBarabasiAlbert, 8000, 3, 43);
    for (NodeId v = 0; v < other.NumNodes(); ++v) g->AddNode();
    for (EdgeId e = 0; e < other.EdgeSlotCount(); ++e) {
      if (!other.IsLiveEdge(e)) continue;
      const Edge& rec = other.edge(e);
      (void)g->AddEdge(static_cast<NodeId>(rec.src + offset),
                       static_cast<NodeId>(rec.dst + offset),
                       other.labels().ToString(rec.label));
    }
    pipe = std::make_unique<Pipeline>();
    pipe->g = std::move(g);
    g = nullptr;
    pipe->csr = CsrSnapshot::Build(*pipe->g);
    pipe->lg = LineGraph::Build(pipe->csr);
    auto oracle = LineReachabilityOracle::Build(pipe->lg);
    pipe->oracle = std::make_unique<LineReachabilityOracle>(
        std::move(oracle).ValueOrDie());
    auto cidx = ClusterJoinIndex::Build(pipe->lg, *pipe->oracle);
    pipe->cluster_index =
        std::make_unique<ClusterJoinIndex>(std::move(cidx).ValueOrDie());
    pipe->tables = BaseTables::Build(pipe->lg);
    pipe->closure = std::make_unique<TransitiveClosure>(
        TransitiveClosure::Build(pipe->csr, true));
  }
  const Pipeline& p = *pipe;
  const BoundPathExpression& expr = GetExpr(p, kQ1);
  OnlineEvaluator bfs(*p.g, p.csr, TraversalOrder::kBfs);
  ClosurePrefilterEvaluator filtered(*p.closure, bfs);
  const Evaluator& eval = prefilter
                              ? static_cast<const Evaluator&>(filtered)
                              : static_cast<const Evaluator&>(bfs);
  Rng rng(17);
  size_t half = p.g->NumNodes() / 2;
  for (auto _ : state) {
    NodeId src = static_cast<NodeId>(rng.NextBounded(half));
    NodeId dst = static_cast<NodeId>(half + rng.NextBounded(half));
    ReachQuery q{src, dst, &expr, false};
    auto r = eval.Evaluate(q);
    benchmark::DoNotOptimize(r->granted);
  }
  state.SetLabel(prefilter ? "with tc-prefilter" : "no prefilter");
}
BENCHMARK(BM_UnreachableDeny)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
