/// B12 -- Durability: cold start, save latency, bundle size.
///
/// The storage/ subsystem's pitch is that a restart is an mmap + verify
/// + adopt, never an index computation. This bench pins that:
///
///  * BM_ColdStartRebuild: the baseline — construct an engine over the
///    already-loaded graph and RebuildIndexes() (CSR, line graph,
///    oracle, cluster index, base tables);
///  * BM_ColdStartOpenFromDir: the durable path — OpenFromDir() over a
///    saved bundle plus a WAL tail of kTailMutations records (load,
///    checksum-verify every section, adopt, replay). The
///    `speedup_vs_rebuild` counter at 256k nodes is the subsystem's
///    ≥5x acceptance series; `bundle_bytes` tracks on-disk size;
///  * BM_SaveSnapshot: writer-observed SaveSnapshot() latency (the
///    serialize + atomic-publish cost compaction pays off the serving
///    path).
///
/// Sizes: 64k and 256k nodes always; the 1M-node series only when
/// SARGUS_BENCH_LARGE is set (CI smoke stays fast).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "bench_common.h"
#include "engine/access_engine.h"
#include "storage/snapshot_format.h"

namespace sargus {
namespace bench {
namespace {

constexpr size_t kTailMutations = 256;

/// One durability directory per size, prepared once per process: graph,
/// policies, a published bundle, and a WAL tail of kTailMutations
/// uncovered records for OpenFromDir to replay.
struct DurableSetup {
  std::unique_ptr<SocialGraph> graph;  // master copy; engines get copies
  PolicyStore store;
  std::string dir;
  uint64_t bundle_bytes = 0;
  double rebuild_seconds = 0;  // one-shot baseline for the speedup counter

  ~DurableSetup() {
    const std::string cmd = "rm -rf '" + dir + "'";
    (void)system(cmd.c_str());
  }
};

DurableSetup& GetSetup(size_t nodes) {
  static std::map<size_t, std::unique_ptr<DurableSetup>> cache;
  auto it = cache.find(nodes);
  if (it != cache.end()) return *it->second;

  auto s = std::make_unique<DurableSetup>();
  s->graph = std::make_unique<SocialGraph>(
      MakeGraph(GraphKind::kErdosRenyi, nodes, 3, 42));
  const ResourceId res = s->store.RegisterResource(0, "res");
  if (!s->store.AddRuleFromPaths(res, {"friend[1,2]/colleague[1]"}).ok()) {
    std::abort();
  }

  char tmpl[] = "/tmp/sargus_bench_storage_XXXXXX";
  s->dir = mkdtemp(tmpl);

  // Build once (timing the same call as the rebuild baseline), publish
  // the bundle, then stage a WAL tail the open path must replay.
  SocialGraph working = *s->graph;
  AccessControlEngine engine(working, s->store);
  const auto t0 = std::chrono::steady_clock::now();
  if (!engine.RebuildIndexes().ok()) std::abort();
  s->rebuild_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!engine.EnableDurability(s->dir).ok()) std::abort();
  Rng rng(nodes);
  for (size_t i = 0; i < kTailMutations; ++i) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(nodes));
    const NodeId dst = static_cast<NodeId>(rng.NextBounded(nodes));
    if (!engine.AddEdge(src, dst, "friend").ok()) std::abort();
  }
  engine.WaitForCompaction();

  auto info = storage::ReadBundleInfo(s->dir + "/" +
                                      storage::kSnapshotFileName);
  if (!info.ok()) std::abort();
  s->bundle_bytes = info->file_size;
  return *cache.emplace(nodes, std::move(s)).first->second;
}

void ColdStartArgs(benchmark::internal::Benchmark* b) {
  b->Arg(64 << 10)->Arg(256 << 10);
  if (std::getenv("SARGUS_BENCH_LARGE") != nullptr) b->Arg(1 << 20);
  b->Unit(benchmark::kMillisecond);
}

void BM_ColdStartRebuild(benchmark::State& state) {
  auto& setup = GetSetup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    SocialGraph g = *setup.graph;  // the rebuild must not mutate the master
    AccessControlEngine engine(g, setup.store);
    state.ResumeTiming();
    if (!engine.RebuildIndexes().ok()) std::abort();
    benchmark::DoNotOptimize(engine.AcquireReadView());
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ColdStartRebuild)->Apply(ColdStartArgs);

void BM_ColdStartOpenFromDir(benchmark::State& state) {
  auto& setup = GetSetup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    SocialGraph g;
    auto engine = AccessControlEngine::OpenFromDir(setup.dir, &g,
                                                   setup.store);
    if (!engine.ok()) std::abort();
    benchmark::DoNotOptimize((*engine)->AcquireReadView());
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  state.counters["bundle_bytes"] = static_cast<double>(setup.bundle_bytes);
  state.counters["wal_tail_records"] = static_cast<double>(kTailMutations);
  // One extra untimed cold start against the one-shot rebuild measured
  // at setup: the ≥5x acceptance counter (at 256k nodes).
  const auto t0 = std::chrono::steady_clock::now();
  {
    SocialGraph g;
    auto engine = AccessControlEngine::OpenFromDir(setup.dir, &g,
                                                   setup.store);
    if (!engine.ok()) std::abort();
  }
  const double open_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.counters["rebuild_seconds_oneshot"] = setup.rebuild_seconds;
  state.counters["speedup_vs_rebuild"] =
      open_seconds > 0 ? setup.rebuild_seconds / open_seconds : 0;
}
BENCHMARK(BM_ColdStartOpenFromDir)->Apply(ColdStartArgs);

void BM_SaveSnapshot(benchmark::State& state) {
  auto& setup = GetSetup(static_cast<size_t>(state.range(0)));
  // A dedicated directory so the benchmark never disturbs the shared
  // bundle the cold-start series opens.
  char tmpl[] = "/tmp/sargus_bench_save_XXXXXX";
  const std::string dir = mkdtemp(tmpl);
  SocialGraph g = *setup.graph;
  AccessControlEngine engine(g, setup.store);
  if (!engine.RebuildIndexes().ok()) std::abort();
  if (!engine.EnableDurability(dir).ok()) std::abort();
  for (auto _ : state) {
    if (!engine.SaveSnapshot().ok()) std::abort();
  }
  state.counters["nodes"] = static_cast<double>(state.range(0));
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)system(cmd.c_str());
}
BENCHMARK(BM_SaveSnapshot)->Apply(ColdStartArgs);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
