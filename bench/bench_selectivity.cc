/// B5 -- Label-alphabet selectivity sweep.
///
/// With a fixed edge budget, a larger relationship alphabet makes each
/// label rarer: online search prunes harder (fewer matching arcs per node)
/// and the join index's base tables shrink. Expected shape: both evaluators
/// speed up as |Sigma| grows; the join index additionally benefits from
/// smaller W-table cluster unions.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"

namespace sargus {
namespace bench {
namespace {

void RunSelectivity(benchmark::State& state, bool join) {
  const size_t num_labels = static_cast<size_t>(state.range(0));
  const Pipeline& p =
      GetPipeline(GraphKind::kErdosRenyi, 8000, num_labels, 42, 6.0);
  // Query always over the first two labels (present for every alphabet).
  const BoundPathExpression& expr =
      GetExpr(p, "friend[1,2]/colleague[1]");
  const auto& pairs = GetPairs(p, expr);
  OnlineEvaluator bfs(*p.g, p.csr, TraversalOrder::kBfs);
  JoinIndexEvaluator jidx(*p.g, p.lg, *p.oracle, *p.cluster_index, p.tables,
                          JoinIndexOptions{});
  const Evaluator& eval = join ? static_cast<const Evaluator&>(jidx)
                               : static_cast<const Evaluator&>(bfs);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    ReachQuery q{src, dst, &expr, false};
    auto r = eval.Evaluate(q);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r->granted);
  }
  state.counters["friend_rows"] = static_cast<double>(
      p.tables.Rows(p.g->labels().Lookup("friend")).size());
  state.SetLabel("|Sigma|=" + std::to_string(num_labels) +
                 (join ? " [join]" : " [bfs]"));
}

void BM_SelectivityOnline(benchmark::State& state) {
  RunSelectivity(state, false);
}
BENCHMARK(BM_SelectivityOnline)->Arg(2)->Arg(3)->Arg(4)->Arg(8)->Arg(16);

void BM_SelectivityJoin(benchmark::State& state) {
  RunSelectivity(state, true);
}
BENCHMARK(BM_SelectivityJoin)->Arg(2)->Arg(3)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
