#ifndef SARGUS_BENCH_BENCH_COMMON_H_
#define SARGUS_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// \brief Shared scaffolding for the benchmark suite: cached graph +
/// index-pipeline construction (graphs are expensive; benchmarks reuse them
/// across cases) and query-pair sampling.

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/path_parser.h"
#include "graph/csr.h"
#include "graph/line_graph.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/line_oracle.h"
#include "index/transitive_closure.h"
#include "synth/generators.h"
#include "synth/workload.h"

namespace sargus {
namespace bench {

/// Kind of synthetic graph.
enum class GraphKind { kErdosRenyi, kBarabasiAlbert, kWattsStrogatz };

inline const char* GraphKindName(GraphKind k) {
  switch (k) {
    case GraphKind::kErdosRenyi:
      return "ER";
    case GraphKind::kBarabasiAlbert:
      return "BA";
    case GraphKind::kWattsStrogatz:
      return "WS";
  }
  return "?";
}

/// A fully built pipeline over one synthetic graph.
struct Pipeline {
  std::unique_ptr<SocialGraph> g;
  CsrSnapshot csr;
  LineGraph lg;
  std::unique_ptr<LineReachabilityOracle> oracle;
  std::unique_ptr<ClusterJoinIndex> cluster_index;
  BaseTables tables;
  std::unique_ptr<TransitiveClosure> closure;  // undirected prefilter
};

/// Generates the graph for (kind, nodes, labels, seed); deterministic.
inline SocialGraph MakeGraph(GraphKind kind, size_t nodes, size_t num_labels,
                             uint64_t seed, double degree = 4.0) {
  SocialGraphSpec base;
  base.num_nodes = nodes;
  base.seed = seed;
  base.labels.clear();
  static const char* kLabelNames[] = {"friend",   "colleague", "family",
                                      "follows",  "contact",   "l5",
                                      "l6",       "l7",        "l8",
                                      "l9",       "l10",       "l11",
                                      "l12",      "l13",       "l14",
                                      "l15"};
  for (size_t i = 0; i < num_labels && i < 16; ++i) {
    base.labels.push_back(kLabelNames[i]);
  }
  Result<SocialGraph> g = [&]() -> Result<SocialGraph> {
    switch (kind) {
      case GraphKind::kErdosRenyi:
        return GenerateErdosRenyi({.base = base, .avg_out_degree = degree});
      case GraphKind::kBarabasiAlbert:
        return GenerateBarabasiAlbert(
            {.base = base,
             .edges_per_node = static_cast<size_t>(degree)});
      case GraphKind::kWattsStrogatz:
        return GenerateWattsStrogatz(
            {.base = base,
             .neighbors_per_side = static_cast<size_t>(degree),
             .rewire_probability = 0.1});
    }
    return Status::InvalidArgument("unknown kind");
  }();
  if (!g.ok()) std::abort();
  return std::move(g).ValueOrDie();
}

/// Returns a cached pipeline (built once per process per key).
inline const Pipeline& GetPipeline(GraphKind kind, size_t nodes,
                                   size_t num_labels = 3, uint64_t seed = 42,
                                   double degree = 4.0) {
  using Key = std::tuple<int, size_t, size_t, uint64_t, int>;
  static std::map<Key, std::unique_ptr<Pipeline>> cache;
  Key key{static_cast<int>(kind), nodes, num_labels, seed,
          static_cast<int>(degree * 100)};
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  auto p = std::make_unique<Pipeline>();
  p->g = std::make_unique<SocialGraph>(
      MakeGraph(kind, nodes, num_labels, seed, degree));
  p->csr = CsrSnapshot::Build(*p->g);
  p->lg = LineGraph::Build(p->csr, {.include_backward = false});
  auto oracle = LineReachabilityOracle::Build(p->lg);
  if (!oracle.ok()) std::abort();
  p->oracle = std::make_unique<LineReachabilityOracle>(
      std::move(oracle).ValueOrDie());
  auto cidx = ClusterJoinIndex::Build(p->lg, *p->oracle);
  if (!cidx.ok()) std::abort();
  p->cluster_index =
      std::make_unique<ClusterJoinIndex>(std::move(cidx).ValueOrDie());
  p->tables = BaseTables::Build(p->lg);
  p->closure = std::make_unique<TransitiveClosure>(
      TransitiveClosure::Build(p->csr, /*as_undirected=*/false));
  return *cache.emplace(key, std::move(p)).first->second;
}

/// Bound expression cache (expressions must outlive queries).
inline const BoundPathExpression& GetExpr(const Pipeline& p,
                                          const std::string& text) {
  using Key = std::pair<const Pipeline*, std::string>;
  static std::map<Key, std::unique_ptr<BoundPathExpression>> cache;
  Key key{&p, text};
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;
  auto parsed = ParsePathExpression(text);
  if (!parsed.ok()) std::abort();
  auto bound = BoundPathExpression::Bind(*parsed, *p.g);
  if (!bound.ok()) std::abort();
  return *cache
              .emplace(key, std::make_unique<BoundPathExpression>(
                                std::move(bound).ValueOrDie()))
              .first->second;
}

/// Query pairs: half audience-guided positives, half uniform (mostly
/// negative). Deterministic per (pipeline, expression).
inline const std::vector<std::pair<NodeId, NodeId>>& GetPairs(
    const Pipeline& p, const BoundPathExpression& expr, size_t count = 64) {
  using Key = std::pair<const Pipeline*, const BoundPathExpression*>;
  static std::map<Key, std::vector<std::pair<NodeId, NodeId>>> cache;
  Key key{&p, &expr};
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  std::vector<std::pair<NodeId, NodeId>> pairs;
  Rng rng(1234);
  const size_t n = p.g->NumNodes();
  while (pairs.size() < count) {
    NodeId src = static_cast<NodeId>(rng.NextBounded(n));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(n));
    if (pairs.size() % 2 == 0) {
      auto audience = CollectMatchingAudience(*p.g, p.csr, expr, src);
      if (!audience.empty()) {
        dst = audience[rng.NextBounded(audience.size())];
      }
    }
    if (src != dst) pairs.emplace_back(src, dst);
  }
  return cache.emplace(key, std::move(pairs)).first->second;
}

}  // namespace bench
}  // namespace sargus

#endif  // SARGUS_BENCH_BENCH_COMMON_H_
