/// B2 -- Query latency across evaluators and graph sizes.
///
/// The paper's central claim: online search costs O(|V|+|E|) per request,
/// the transitive closure answers in O(1) but cannot handle ordered label
/// constraints, and the join index sits in between -- millisecond-free
/// lookups after a one-off precomputation. This bench regenerates that
/// series: per graph size, the latency of each evaluator on a 50/50
/// grant/deny mix of the paper's Q1 (friend[1,2]/colleague[1]).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/bidirectional.h"
#include "query/closure_prefilter.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"

namespace sargus {
namespace bench {
namespace {

constexpr const char* kQ1 = "friend[1,2]/colleague[1]";

template <typename MakeEval>
void RunQueryBench(benchmark::State& state, size_t nodes,
                   MakeEval&& make_eval, const char* expr_text = kQ1) {
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert, nodes);
  const BoundPathExpression& expr = GetExpr(p, expr_text);
  const auto& pairs = GetPairs(p, expr);
  auto eval = make_eval(p);
  size_t i = 0;
  uint64_t grants = 0, work = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    ReachQuery q{src, dst, &expr, /*want_witness=*/false};
    auto r = eval->Evaluate(q);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    grants += r->granted;
    work += r->stats.pairs_visited + r->stats.tuples_generated;
    benchmark::DoNotOptimize(r->granted);
  }
  state.counters["grant_rate"] =
      benchmark::Counter(static_cast<double>(grants),
                         benchmark::Counter::kAvgIterations);
  state.counters["work_items"] = benchmark::Counter(
      static_cast<double>(work), benchmark::Counter::kAvgIterations);
  state.SetLabel("|V|=" + std::to_string(nodes) +
                 " |E|=" + std::to_string(p.g->NumEdges()));
}

void BM_OnlineBfs(benchmark::State& state) {
  RunQueryBench(state, static_cast<size_t>(state.range(0)),
                [](const Pipeline& p) {
                  return std::make_unique<OnlineEvaluator>(
                      *p.g, p.csr, TraversalOrder::kBfs);
                });
}
BENCHMARK(BM_OnlineBfs)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000);

void BM_OnlineDfs(benchmark::State& state) {
  RunQueryBench(state, static_cast<size_t>(state.range(0)),
                [](const Pipeline& p) {
                  return std::make_unique<OnlineEvaluator>(
                      *p.g, p.csr, TraversalOrder::kDfs);
                });
}
BENCHMARK(BM_OnlineDfs)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000);

void BM_OnlineBidirectional(benchmark::State& state) {
  RunQueryBench(state, static_cast<size_t>(state.range(0)),
                [](const Pipeline& p) {
                  return std::make_unique<BidirectionalEvaluator>(*p.g,
                                                                  p.csr);
                });
}
BENCHMARK(BM_OnlineBidirectional)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Arg(64000);

void BM_JoinIndex(benchmark::State& state) {
  RunQueryBench(state, static_cast<size_t>(state.range(0)),
                [](const Pipeline& p) {
                  return std::make_unique<JoinIndexEvaluator>(
                      *p.g, p.lg, *p.oracle, *p.cluster_index, p.tables,
                      JoinIndexOptions{});
                });
}
BENCHMARK(BM_JoinIndex)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000);

void BM_JoinIndexWithPrefilter(benchmark::State& state) {
  RunQueryBench(
      state, static_cast<size_t>(state.range(0)), [](const Pipeline& p) {
        struct Combo : Evaluator {
          Combo(const Pipeline& p)
              : join(*p.g, p.lg, *p.oracle, *p.cluster_index, p.tables,
                     JoinIndexOptions{}),
                filtered(*p.closure, join) {}
          Result<Evaluation> EvaluateWith(const ReachQuery& q,
                                          EvalContext& ctx) const override {
            return filtered.Evaluate(q, ctx);
          }
          std::string_view name() const override { return "combo"; }
          JoinIndexEvaluator join;
          ClosurePrefilterEvaluator filtered;
        };
        return std::make_unique<Combo>(p);
      });
}
BENCHMARK(BM_JoinIndexWithPrefilter)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Arg(64000);

/// The O(1)-but-label-blind baseline: plain closure lookup. Not a correct
/// OLCR answer (it ignores labels/order); included to reproduce the paper's
/// complexity table, not to compete on semantics.
void BM_ClosureLookupLabelBlind(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert, nodes);
  const BoundPathExpression& expr = GetExpr(p, kQ1);
  const auto& pairs = GetPairs(p, expr);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(p.closure->Reachable(src, dst));
  }
  state.SetLabel("|V|=" + std::to_string(nodes) + " (label-blind!)");
}
BENCHMARK(BM_ClosureLookupLabelBlind)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Arg(64000);

/// Grant vs deny latency split: early exit helps grants, denies pay full
/// exploration cost under online search but not under the join index.
void BM_GrantVsDeny(benchmark::State& state) {
  const bool positive = state.range(0) == 1;
  const bool join = state.range(1) == 1;
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert, 16000);
  const BoundPathExpression& expr = GetExpr(p, kQ1);
  const auto& all = GetPairs(p, expr, 128);

  OnlineEvaluator bfs(*p.g, p.csr, TraversalOrder::kBfs);
  JoinIndexEvaluator jidx(*p.g, p.lg, *p.oracle, *p.cluster_index, p.tables,
                          JoinIndexOptions{});
  const Evaluator& eval = join ? static_cast<const Evaluator&>(jidx)
                               : static_cast<const Evaluator&>(bfs);
  // Partition pairs by actual outcome.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& pr : all) {
    ReachQuery q{pr.first, pr.second, &expr, false};
    auto r = bfs.Evaluate(q);
    if (r.ok() && r->granted == positive) pairs.push_back(pr);
  }
  if (pairs.empty()) {
    state.SkipWithError("no pairs with requested outcome");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    ReachQuery q{src, dst, &expr, false};
    auto r = eval.Evaluate(q);
    benchmark::DoNotOptimize(r->granted);
  }
  state.SetLabel(std::string(join ? "join-index" : "online-bfs") +
                 (positive ? " grant" : " deny"));
}
BENCHMARK(BM_GrantVsDeny)
    ->ArgsProduct({{0, 1}, {0, 1}});

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
