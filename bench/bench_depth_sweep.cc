/// B3 -- Latency vs path length and depth bound.
///
/// Longer path expressions mean more automaton states (online) and more /
/// longer line queries (join index). Depth ranges widen the line-query
/// expansion multiplicatively (Figure 4), which is the join pipeline's weak
/// spot; the automaton absorbs them linearly. Expected shape: join-index
/// wins at small depth products, online search degrades gracefully.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"

namespace sargus {
namespace bench {
namespace {

std::string ChainTemplate(int steps) {
  // friend[1]/friend[1]/.../colleague[1]
  std::string out;
  for (int i = 0; i + 1 < steps; ++i) {
    out += i ? "/friend[1]" : "friend[1]";
  }
  out += steps > 1 ? "/colleague[1]" : "colleague[1]";
  return out;
}

std::string DepthTemplate(int max_depth) {
  return "friend[1," + std::to_string(max_depth) + "]/colleague[1]";
}

void RunSweep(benchmark::State& state, const std::string& tmpl, bool join) {
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert, 8000);
  const BoundPathExpression& expr = GetExpr(p, tmpl);
  const auto& pairs = GetPairs(p, expr);
  OnlineEvaluator bfs(*p.g, p.csr, TraversalOrder::kBfs);
  JoinIndexEvaluator jidx(*p.g, p.lg, *p.oracle, *p.cluster_index, p.tables,
                          JoinIndexOptions{});
  const Evaluator& eval = join ? static_cast<const Evaluator&>(jidx)
                               : static_cast<const Evaluator&>(bfs);
  size_t i = 0;
  uint64_t line_queries = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    ReachQuery q{src, dst, &expr, false};
    auto r = eval.Evaluate(q);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    line_queries += r->stats.line_queries;
    benchmark::DoNotOptimize(r->granted);
  }
  state.counters["line_queries"] = benchmark::Counter(
      static_cast<double>(line_queries), benchmark::Counter::kAvgIterations);
  state.SetLabel(tmpl + (join ? " [join]" : " [bfs]"));
}

void BM_PathLength(benchmark::State& state) {
  RunSweep(state, ChainTemplate(static_cast<int>(state.range(0))),
           state.range(1) == 1);
}
BENCHMARK(BM_PathLength)->ArgsProduct({{1, 2, 3, 4, 5}, {0, 1}});

void BM_DepthBound(benchmark::State& state) {
  RunSweep(state, DepthTemplate(static_cast<int>(state.range(0))),
           state.range(1) == 1);
}
BENCHMARK(BM_DepthBound)->ArgsProduct({{1, 2, 3, 4}, {0, 1}});

/// Two wide ranges multiply: friend[1,k]/friend[1,k]/colleague[1].
void BM_ExpansionProduct(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string tmpl = "friend[1," + std::to_string(k) + "]/friend[1," +
                     std::to_string(k) + "]/colleague[1]";
  RunSweep(state, tmpl, state.range(1) == 1);
}
BENCHMARK(BM_ExpansionProduct)->ArgsProduct({{1, 2, 3}, {0, 1}});

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
