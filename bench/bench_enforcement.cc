/// B4 -- End-to-end access-control throughput.
///
/// Full engine path: resource lookup, rule iteration, condition binding
/// (cached), evaluator dispatch, audit logging. The policy mix mirrors the
/// paper's motivating examples (friends-only, friends-of-friends,
/// colleague-of-friend, attribute-filtered, incoming-friend). Reported as
/// decisions/second per evaluator configuration.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/access_engine.h"

namespace sargus {
namespace bench {
namespace {

struct EngineFixture {
  std::unique_ptr<SocialGraph> g;
  PolicyStore store;
  std::vector<ResourceId> resources;
  std::vector<NodeId> requesters;
};

EngineFixture& GetFixture(size_t nodes) {
  static std::map<size_t, std::unique_ptr<EngineFixture>> cache;
  auto it = cache.find(nodes);
  if (it != cache.end()) return *it->second;

  auto f = std::make_unique<EngineFixture>();
  f->g = std::make_unique<SocialGraph>(
      MakeGraph(GraphKind::kBarabasiAlbert, nodes, 3, 42));
  static const char* kPolicyMix[] = {
      "friend[1]",
      "friend[1,2]",
      "friend[1,2]/colleague[1]",
      "friend[1]{age>=18}",
      "friend-[1,2]",
  };
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    NodeId owner = static_cast<NodeId>(rng.NextBounded(nodes));
    ResourceId res =
        f->store.RegisterResource(owner, "res" + std::to_string(i));
    auto rule = f->store.AddRuleFromPaths(res, {kPolicyMix[i % 5]});
    if (!rule.ok()) std::abort();
    f->resources.push_back(res);
  }
  for (int i = 0; i < 256; ++i) {
    f->requesters.push_back(static_cast<NodeId>(rng.NextBounded(nodes)));
  }
  return *cache.emplace(nodes, std::move(f)).first->second;
}

void RunEngineBench(benchmark::State& state, EngineOptions options,
                    bool want_witness = false) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  EngineFixture& f = GetFixture(nodes);
  // Backward steps in the policy mix need backward line orientations.
  options.line_graph_backward = true;
  AccessControlEngine engine(*f.g, f.store, options);
  if (auto st = engine.RebuildIndexes(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  size_t i = 0;
  uint64_t grants = 0;
  for (auto _ : state) {
    NodeId requester = f.requesters[i % f.requesters.size()];
    ResourceId resource = f.resources[i % f.resources.size()];
    ++i;
    auto d = engine.CheckAccess({.requester = requester,
                                 .resource = resource,
                                 .want_witness = want_witness});
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      break;
    }
    grants += d->granted;
    benchmark::DoNotOptimize(d->granted);
  }
  state.counters["decisions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["grant_rate"] = benchmark::Counter(
      static_cast<double>(grants), benchmark::Counter::kAvgIterations);
}

void BM_EngineAuto(benchmark::State& state) {
  EngineOptions o;
  o.evaluator = EvaluatorChoice::kAuto;
  RunEngineBench(state, o);
}
BENCHMARK(BM_EngineAuto)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_EngineOnlineBfs(benchmark::State& state) {
  EngineOptions o;
  o.evaluator = EvaluatorChoice::kOnlineBfs;
  RunEngineBench(state, o);
}
BENCHMARK(BM_EngineOnlineBfs)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_EngineJoinIndex(benchmark::State& state) {
  EngineOptions o;
  o.evaluator = EvaluatorChoice::kJoinIndex;
  RunEngineBench(state, o);
}
BENCHMARK(BM_EngineJoinIndex)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_EngineAutoWithPrefilter(benchmark::State& state) {
  EngineOptions o;
  o.evaluator = EvaluatorChoice::kAuto;
  o.use_closure_prefilter = true;
  RunEngineBench(state, o);
}
BENCHMARK(BM_EngineAutoWithPrefilter)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_EngineWithWitness(benchmark::State& state) {
  EngineOptions o;
  o.evaluator = EvaluatorChoice::kAuto;
  RunEngineBench(state, o, /*want_witness=*/true);
}
BENCHMARK(BM_EngineWithWitness)->Arg(4000);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
