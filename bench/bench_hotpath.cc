/// B9 -- The zero-allocation hot path: short-witness grant latency vs
/// graph size.
///
/// Before the scratch pool, every Evaluate allocated and zeroed an
/// O(|V| x automaton states) visited array (two for bidirectional), so
/// even a grant whose witness is one hop long paid a cost linear in the
/// graph. With the epoch-stamped pool the steady-state cost is O(work
/// touched): latency for a short-witness grant should stay roughly flat
/// as |V| grows. The *_ColdScratch variant re-creates the scratch pool
/// every query -- reintroducing the O(|V|) floor on purpose -- so the
/// flat-vs-linear split is visible inside one run.
///
/// CI runs this binary with --benchmark_out to keep a machine-readable
/// BENCH_hotpath.json trajectory across PRs.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/bidirectional.h"
#include "query/eval_context.h"
#include "query/online_evaluator.h"

namespace sargus {
namespace bench {
namespace {

constexpr const char* kShortExpr = "friend[1,2]";

/// Graph + CSR only (no join stack): hotpath cases only need traversal.
struct LightPipeline {
  std::unique_ptr<SocialGraph> g;
  CsrSnapshot csr;
  std::unique_ptr<BoundPathExpression> expr;  // kShortExpr, bound to g
};

const LightPipeline& GetLightPipeline(size_t nodes) {
  static std::map<size_t, std::unique_ptr<LightPipeline>> cache;
  auto it = cache.find(nodes);
  if (it != cache.end()) return *it->second;
  auto p = std::make_unique<LightPipeline>();
  p->g = std::make_unique<SocialGraph>(
      MakeGraph(GraphKind::kBarabasiAlbert, nodes, /*num_labels=*/3,
                /*seed=*/42));
  p->csr = CsrSnapshot::Build(*p->g);
  auto parsed = ParsePathExpression(kShortExpr);
  if (!parsed.ok()) std::abort();
  auto bound = BoundPathExpression::Bind(*parsed, *p->g);
  if (!bound.ok()) std::abort();
  p->expr = std::make_unique<BoundPathExpression>(
      std::move(bound).ValueOrDie());
  return *cache.emplace(nodes, std::move(p)).first->second;
}

/// A (src, dst) pair one friend-hop apart: the shortest possible witness,
/// found in the very first frontier expansion.
std::pair<NodeId, NodeId> ShortGrantPair(const LightPipeline& p) {
  const LabelId friend_label = p.g->labels().Lookup("friend");
  for (NodeId src = 0; src < p.csr.NumNodes(); ++src) {
    const auto entries = p.csr.OutWithLabel(src, friend_label);
    if (!entries.empty()) return {src, entries.front().other};
  }
  std::abort();  // generators always emit friend edges
}

void RunShortGrant(benchmark::State& state, const Evaluator& eval,
                   const LightPipeline& p, bool cold_scratch,
                   bool want_witness = false) {
  const auto [src, dst] = ShortGrantPair(p);
  ReachQuery q{src, dst, p.expr.get(), want_witness};
  EvalContext warm;
  for (auto _ : state) {
    Result<Evaluation> r = [&] {
      if (cold_scratch) {
        EvalContext fresh;  // pays the O(|V|·states) first-touch growth
        return eval.Evaluate(q, fresh);
      }
      return eval.Evaluate(q, warm);
    }();
    if (!r.ok() || !r->granted) {
      state.SkipWithError("short grant did not grant");
      break;
    }
    benchmark::DoNotOptimize(r->granted);
  }
  state.SetLabel("|V|=" + std::to_string(p.csr.NumNodes()) +
                 " |E|=" + std::to_string(p.g->NumEdges()) +
                 (cold_scratch ? " cold" : " warm"));
}

void BM_ShortGrant_OnlineBfs_WarmScratch(benchmark::State& state) {
  const LightPipeline& p = GetLightPipeline(state.range(0));
  OnlineEvaluator eval(*p.g, p.csr, TraversalOrder::kBfs);
  RunShortGrant(state, eval, p, /*cold_scratch=*/false);
}
BENCHMARK(BM_ShortGrant_OnlineBfs_WarmScratch)
    ->Arg(1000)->Arg(8000)->Arg(64000)->Arg(256000);

void BM_ShortGrant_OnlineBfs_ColdScratch(benchmark::State& state) {
  const LightPipeline& p = GetLightPipeline(state.range(0));
  OnlineEvaluator eval(*p.g, p.csr, TraversalOrder::kBfs);
  RunShortGrant(state, eval, p, /*cold_scratch=*/true);
}
BENCHMARK(BM_ShortGrant_OnlineBfs_ColdScratch)
    ->Arg(1000)->Arg(8000)->Arg(64000)->Arg(256000);

void BM_ShortGrant_Bidirectional_WarmScratch(benchmark::State& state) {
  const LightPipeline& p = GetLightPipeline(state.range(0));
  BidirectionalEvaluator eval(*p.g, p.csr);
  RunShortGrant(state, eval, p, /*cold_scratch=*/false);
}
BENCHMARK(BM_ShortGrant_Bidirectional_WarmScratch)
    ->Arg(1000)->Arg(8000)->Arg(64000)->Arg(256000);

/// Witness reconstruction on the warm pool: grants with the path asked
/// for stay O(work) too (bidirectional reruns the shared forward walker
/// instead of constructing a throwaway evaluator).
void BM_ShortGrantWitness_Bidirectional_WarmScratch(benchmark::State& state) {
  const LightPipeline& p = GetLightPipeline(state.range(0));
  BidirectionalEvaluator eval(*p.g, p.csr);
  RunShortGrant(state, eval, p, /*cold_scratch=*/false,
                /*want_witness=*/true);
}
BENCHMARK(BM_ShortGrantWitness_Bidirectional_WarmScratch)
    ->Arg(1000)->Arg(8000)->Arg(64000)->Arg(256000);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
