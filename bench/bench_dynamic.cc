/// B8 -- Index maintenance under graph churn.
///
/// The paper motivates itself with social graphs "in constant evolution",
/// but its index is a batch-built snapshot. This bench quantifies the
/// resulting trade-off three ways:
///
///  * the legacy cost models (BM_Churn{JoinIndex,Online}): a mutation
///    every k queries forces a full pipeline / CSR rebuild;
///  * the delta-overlay model (BM_ChurnEngineOverlay): mutations are
///    O(1) staged writes consulted by the walker, rebuilds happen only
///    at compaction — the crossover disappears;
///  * the per-mutation scaling check (BM_OverlayMutation*): staged
///    mutation cost must be flat in |V| (the acceptance criterion for
///    the overlay subsystem), with compaction as a bounded amortized
///    add-on, while the rebuild-per-mutation baseline grows linearly;
///  * the compaction-latency series (BM_CompactStall*): the
///    writer-observed Compact() stall under the blocking mode (the full
///    fold + rebuild, linear in |V|) vs the background double-buffered
///    mode (an O(overlay) freeze — flat in |V|, the ≥10x-at-64k
///    acceptance series), plus incremental-vs-full index maintenance on
///    small insertion-only overlays (BM_CompactIncrementalVsFull).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/access_engine.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"

namespace sargus {
namespace bench {
namespace {

constexpr const char* kQ1 = "friend[1,2]/colleague[1]";
constexpr size_t kNodes = 4000;

/// Removes and re-adds one existing edge: a minimal structural mutation
/// that invalidates every snapshot index.
void MutateOneEdge(SocialGraph& g, Rng& rng) {
  for (int attempts = 0; attempts < 64; ++attempts) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.EdgeSlotCount()));
    if (!g.IsLiveEdge(e)) continue;
    Edge rec = g.edge(e);
    if (!g.RemoveEdge(e).ok()) continue;
    (void)g.AddEdge(rec.src, rec.dst, rec.label);
    return;
  }
}

void BM_ChurnJoinIndex(benchmark::State& state) {
  const size_t queries_per_mutation = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 42);
  auto parsed = ParsePathExpression(kQ1);
  auto expr = BoundPathExpression::Bind(*parsed, g);
  Rng rng(7);

  // Full pipeline, rebuilt on every mutation.
  auto rebuild = [&g]() {
    struct Stack {
      CsrSnapshot csr;
      LineGraph lg;
      std::unique_ptr<LineReachabilityOracle> oracle;
      std::unique_ptr<ClusterJoinIndex> cidx;
      BaseTables tables;
    };
    auto s = std::make_unique<Stack>();
    s->csr = CsrSnapshot::Build(g);
    s->lg = LineGraph::Build(s->csr);
    auto oracle = LineReachabilityOracle::Build(s->lg);
    s->oracle = std::make_unique<LineReachabilityOracle>(
        std::move(oracle).ValueOrDie());
    auto cidx = ClusterJoinIndex::Build(s->lg, *s->oracle);
    s->cidx = std::make_unique<ClusterJoinIndex>(std::move(cidx).ValueOrDie());
    s->tables = BaseTables::Build(s->lg);
    return s;
  };
  auto stack = rebuild();
  size_t i = 0;
  size_t rebuilds = 0;
  for (auto _ : state) {
    if (i % queries_per_mutation == 0 && i > 0) {
      MutateOneEdge(g, rng);
      stack = rebuild();
      ++rebuilds;
    }
    ++i;
    JoinIndexEvaluator eval(g, stack->lg, *stack->oracle, *stack->cidx,
                            stack->tables, JoinIndexOptions{});
    NodeId src = static_cast<NodeId>(rng.NextBounded(kNodes));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(kNodes));
    ReachQuery q{src, dst, &*expr, false};
    auto r = eval.Evaluate(q);
    benchmark::DoNotOptimize(r->granted);
  }
  state.counters["rebuilds"] = static_cast<double>(rebuilds);
  state.SetLabel("1 mutation per " + std::to_string(queries_per_mutation) +
                 " queries [join]");
}
BENCHMARK(BM_ChurnJoinIndex)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_ChurnOnline(benchmark::State& state) {
  const size_t queries_per_mutation = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 42);
  auto parsed = ParsePathExpression(kQ1);
  auto expr = BoundPathExpression::Bind(*parsed, g);
  Rng rng(7);
  auto csr = std::make_unique<CsrSnapshot>(CsrSnapshot::Build(g));
  size_t i = 0;
  for (auto _ : state) {
    if (i % queries_per_mutation == 0 && i > 0) {
      MutateOneEdge(g, rng);
      csr = std::make_unique<CsrSnapshot>(CsrSnapshot::Build(g));
    }
    ++i;
    OnlineEvaluator eval(g, *csr, TraversalOrder::kBfs);
    NodeId src = static_cast<NodeId>(rng.NextBounded(kNodes));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(kNodes));
    ReachQuery q{src, dst, &*expr, false};
    auto r = eval.Evaluate(q);
    benchmark::DoNotOptimize(r->granted);
  }
  state.SetLabel("1 mutation per " + std::to_string(queries_per_mutation) +
                 " queries [online]");
}
BENCHMARK(BM_ChurnOnline)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

/// Engine with the delta overlay: one mutation (retire a live edge,
/// introduce a fresh one — both staged in the overlay) every k queries,
/// with queries running against the non-empty overlay and rebuilds only
/// at threshold-triggered compactions. Compare against
/// BM_ChurnJoinIndex/BM_ChurnOnline at the same k: the per-mutation
/// rebuild term is gone, so latency is flat in k.
void BM_ChurnEngineOverlay(benchmark::State& state) {
  const size_t queries_per_mutation = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 42);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {kQ1}).ValueOrDie();
  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kOnlineBfs});
  if (auto st = engine.RebuildIndexes(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  const LabelId friend_label = g.labels().Lookup("friend");
  Rng rng(7);
  size_t i = 0;
  for (auto _ : state) {
    if (i % queries_per_mutation == 0 && i > 0) {
      // One structural mutation that *stays* in the overlay: retire a
      // random live edge and introduce a fresh one (two O(1) staged
      // writes). The overlay is therefore non-empty for the queries
      // below — they exercise the overlay-merged neighbor iteration,
      // not the empty-overlay fast path — and auto-compaction folds it
      // in at the default threshold (see the compactions counter).
      for (int attempts = 0; attempts < 64; ++attempts) {
        EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.EdgeSlotCount()));
        if (!g.IsLiveEdge(e)) continue;
        Edge rec = g.edge(e);
        // kNotFound when this slot's edge is already staged-removed.
        if (!engine.RemoveEdge(rec.src, rec.dst, rec.label).ok()) continue;
        break;
      }
      const NodeId s = static_cast<NodeId>(rng.NextBounded(kNodes));
      const NodeId d = static_cast<NodeId>(rng.NextBounded(kNodes));
      (void)engine.AddEdge(s, d, friend_label);
    }
    ++i;
    NodeId requester = static_cast<NodeId>(rng.NextBounded(kNodes));
    auto r = engine.CheckAccess({.requester = requester, .resource = res});
    benchmark::DoNotOptimize(r->granted);
  }
  state.counters["compactions"] =
      static_cast<double>(engine.snapshot_generation() - 1);
  state.SetLabel("1 overlay mutation per " +
                 std::to_string(queries_per_mutation) + " queries [engine]");
}
BENCHMARK(BM_ChurnEngineOverlay)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

/// Pure staged-mutation cost vs |V|: each iteration stages an AddEdge
/// of an edge *not* in the base graph and withdraws it with a
/// RemoveEdge, so the two always cancel in the overlay (a pair that hit
/// a base edge would stage a persistent removal instead).
/// Auto-compaction is disabled, so no rebuild is ever triggered and
/// per-mutation time must be independent of graph size — the O(1)
/// claim, measured.
void BM_OverlayMutationOnly(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, n, 3, 42);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {kQ1}).ValueOrDie();
  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kOnlineBfs,
                              .compact_threshold = 0});
  if (auto st = engine.RebuildIndexes(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  const LabelId friend_label = g.labels().Lookup("friend");
  Rng rng(9);
  for (auto _ : state) {
    NodeId s, d;
    do {
      s = static_cast<NodeId>(rng.NextBounded(n));
      d = static_cast<NodeId>(rng.NextBounded(n));
    } while (g.FindEdge(s, d, friend_label).has_value());
    benchmark::DoNotOptimize(engine.AddEdge(s, d, friend_label).ok());
    benchmark::DoNotOptimize(engine.RemoveEdge(s, d, friend_label).ok());
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * 2);  // two mutations/iter
}
BENCHMARK(BM_OverlayMutationOnly)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

/// Sustained distinct insertions vs |V| with auto-compaction on: the
/// amortized cost is the O(1) staging write plus (CSR rebuild /
/// compact_threshold). Counters expose how many compactions ran.
void BM_OverlayMutationWithCompaction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, n, 3, 42);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {kQ1}).ValueOrDie();
  AccessControlEngine engine(
      g, store,
      {.evaluator = EvaluatorChoice::kOnlineBfs, .compact_threshold = 1024});
  if (auto st = engine.RebuildIndexes(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  const LabelId friend_label = g.labels().Lookup("friend");
  Rng rng(11);
  for (auto _ : state) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId d = static_cast<NodeId>(rng.NextBounded(n));
    benchmark::DoNotOptimize(engine.AddEdge(s, d, friend_label).ok());
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["compactions"] =
      static_cast<double>(engine.snapshot_generation() - 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverlayMutationWithCompaction)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

/// The old cost model at the same sizes, for the scaling contrast: one
/// mutation = one full CSR rebuild (online-only configuration, i.e. the
/// *cheapest* legacy rebuild). Grows linearly with |V|+|E| where the
/// overlay benches stay flat.
void BM_RebuildMutationBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, n, 3, 42);
  Rng rng(13);
  for (auto _ : state) {
    MutateOneEdge(g, rng);
    CsrSnapshot csr = CsrSnapshot::Build(g);
    benchmark::DoNotOptimize(csr.NumEdges());
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RebuildMutationBaseline)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

/// Stages `count` distinct not-in-base insertions (threshold off, so
/// nothing compacts mid-staging).
void StageFreshInsertions(AccessControlEngine& engine, const SocialGraph& g,
                          LabelId label, size_t n, size_t count, Rng& rng) {
  for (size_t i = 0; i < count; ++i) {
    NodeId s, d;
    do {
      s = static_cast<NodeId>(rng.NextBounded(n));
      d = static_cast<NodeId>(rng.NextBounded(n));
    } while (g.FindEdge(s, d, label).has_value() ||
             engine.overlay().IsStagedAdd(s, d, label));
    (void)engine.AddEdge(s, d, label);
  }
}

/// Writer-observed Compact() stall, blocking mode: the timed region is
/// the full fold + index rebuild — linear in |V| (the pre-PR behavior,
/// and the baseline for the background series below).
void BM_CompactStallBlocking(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, n, 3, 42);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {kQ1}).ValueOrDie();
  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kOnlineBfs,
                              .compact_threshold = 0,
                              .background_compaction = false});
  if (auto st = engine.RebuildIndexes(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  const LabelId friend_label = g.labels().Lookup("friend");
  Rng rng(21);
  for (auto _ : state) {
    state.PauseTiming();
    StageFreshInsertions(engine, g, friend_label, n, 64, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Compact().ok());
  }
  state.counters["nodes"] = static_cast<double>(n);
}
BENCHMARK(BM_CompactStallBlocking)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

/// Writer-observed Compact() stall, background mode: the timed region
/// is only the freeze (an O(overlay) copy + thread kick) — the build,
/// fold and publish happen on the compaction thread (drained outside
/// the timer). Must be flat in |V| and ≥10x below the blocking series
/// at 64k nodes — the tentpole acceptance criterion.
void BM_CompactStallBackground(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, n, 3, 42);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {kQ1}).ValueOrDie();
  AccessControlEngine engine(g, store,
                             {.evaluator = EvaluatorChoice::kOnlineBfs,
                              .compact_threshold = 0,
                              .background_compaction = true});
  if (auto st = engine.RebuildIndexes(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  const LabelId friend_label = g.labels().Lookup("friend");
  Rng rng(23);
  for (auto _ : state) {
    state.PauseTiming();
    StageFreshInsertions(engine, g, friend_label, n, 64, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Compact().ok());
    state.PauseTiming();
    engine.WaitForCompaction();  // drain off the writer's clock
    state.ResumeTiming();
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["incremental"] =
      static_cast<double>(engine.incremental_compactions());
}
BENCHMARK(BM_CompactStallBackground)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

/// Full compaction wall time (blocking, so the timer sees the whole
/// build) with the incremental index patch on vs off, on an
/// insertion-only overlay well under the 5%-of-|E| gate. Run under
/// kAuto so the join stack — the part the patch actually skips
/// (Tarjan + condensation + label sweep) — is in play. The staged
/// insertions hang off a fresh node so the patch is always applicable
/// (no cycle fallback).
void BM_CompactIncrementalVsFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, n, 3, 42);
  PolicyStore store;
  const ResourceId res = store.RegisterResource(/*owner=*/0, "doc");
  (void)store.AddRuleFromPaths(res, {kQ1}).ValueOrDie();
  AccessControlEngine engine(
      g, store,
      {.evaluator = EvaluatorChoice::kAuto,
       .compact_threshold = 0,
       .background_compaction = false,
       .incremental_max_fraction = incremental ? 0.05 : 0.0});
  if (auto st = engine.RebuildIndexes(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  const LabelId friend_label = g.labels().Lookup("friend");
  Rng rng(29);
  for (auto _ : state) {
    state.PauseTiming();
    auto id = engine.AddNode();
    for (int i = 0; i < 32; ++i) {
      (void)engine.AddEdge(*id, static_cast<NodeId>(rng.NextBounded(n)),
                           friend_label);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Compact().ok());
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["incremental_compactions"] =
      static_cast<double>(engine.incremental_compactions());
  state.counters["full_compactions"] =
      static_cast<double>(engine.full_compactions());
  state.SetLabel(incremental ? "incremental index maintenance"
                             : "full rebuild");
}
BENCHMARK(BM_CompactIncrementalVsFull)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
