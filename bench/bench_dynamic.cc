/// B8 -- Index maintenance under graph churn.
///
/// The paper motivates itself with social graphs "in constant evolution",
/// but its index is a batch-built snapshot. This bench quantifies the
/// resulting trade-off: with a mutation every k queries, the join-index
/// pipeline pays a full rebuild per mutation while online search only
/// refreshes the CSR snapshot. The crossover -- how many queries per
/// mutation the index needs before it wins -- is the number a deployment
/// would actually size against.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "query/join_evaluator.h"
#include "query/online_evaluator.h"

namespace sargus {
namespace bench {
namespace {

constexpr const char* kQ1 = "friend[1,2]/colleague[1]";
constexpr size_t kNodes = 4000;

/// Removes and re-adds one existing edge: a minimal structural mutation
/// that invalidates every snapshot index.
void MutateOneEdge(SocialGraph& g, Rng& rng) {
  for (int attempts = 0; attempts < 64; ++attempts) {
    EdgeId e = static_cast<EdgeId>(rng.NextBounded(g.EdgeSlotCount()));
    if (!g.IsLiveEdge(e)) continue;
    Edge rec = g.edge(e);
    if (!g.RemoveEdge(e).ok()) continue;
    (void)g.AddEdge(rec.src, rec.dst, rec.label);
    return;
  }
}

void BM_ChurnJoinIndex(benchmark::State& state) {
  const size_t queries_per_mutation = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 42);
  auto parsed = ParsePathExpression(kQ1);
  auto expr = BoundPathExpression::Bind(*parsed, g);
  Rng rng(7);

  // Full pipeline, rebuilt on every mutation.
  auto rebuild = [&g]() {
    struct Stack {
      CsrSnapshot csr;
      LineGraph lg;
      std::unique_ptr<LineReachabilityOracle> oracle;
      std::unique_ptr<ClusterJoinIndex> cidx;
      BaseTables tables;
    };
    auto s = std::make_unique<Stack>();
    s->csr = CsrSnapshot::Build(g);
    s->lg = LineGraph::Build(s->csr);
    auto oracle = LineReachabilityOracle::Build(s->lg);
    s->oracle = std::make_unique<LineReachabilityOracle>(
        std::move(oracle).ValueOrDie());
    auto cidx = ClusterJoinIndex::Build(s->lg, *s->oracle);
    s->cidx = std::make_unique<ClusterJoinIndex>(std::move(cidx).ValueOrDie());
    s->tables = BaseTables::Build(s->lg);
    return s;
  };
  auto stack = rebuild();
  size_t i = 0;
  size_t rebuilds = 0;
  for (auto _ : state) {
    if (i % queries_per_mutation == 0 && i > 0) {
      MutateOneEdge(g, rng);
      stack = rebuild();
      ++rebuilds;
    }
    ++i;
    JoinIndexEvaluator eval(g, stack->lg, *stack->oracle, *stack->cidx,
                            stack->tables, JoinIndexOptions{});
    NodeId src = static_cast<NodeId>(rng.NextBounded(kNodes));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(kNodes));
    ReachQuery q{src, dst, &*expr, false};
    auto r = eval.Evaluate(q);
    benchmark::DoNotOptimize(r->granted);
  }
  state.counters["rebuilds"] = static_cast<double>(rebuilds);
  state.SetLabel("1 mutation per " + std::to_string(queries_per_mutation) +
                 " queries [join]");
}
BENCHMARK(BM_ChurnJoinIndex)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_ChurnOnline(benchmark::State& state) {
  const size_t queries_per_mutation = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, kNodes, 3, 42);
  auto parsed = ParsePathExpression(kQ1);
  auto expr = BoundPathExpression::Bind(*parsed, g);
  Rng rng(7);
  auto csr = std::make_unique<CsrSnapshot>(CsrSnapshot::Build(g));
  size_t i = 0;
  for (auto _ : state) {
    if (i % queries_per_mutation == 0 && i > 0) {
      MutateOneEdge(g, rng);
      csr = std::make_unique<CsrSnapshot>(CsrSnapshot::Build(g));
    }
    ++i;
    OnlineEvaluator eval(g, *csr, TraversalOrder::kBfs);
    NodeId src = static_cast<NodeId>(rng.NextBounded(kNodes));
    NodeId dst = static_cast<NodeId>(rng.NextBounded(kNodes));
    ReachQuery q{src, dst, &*expr, false};
    auto r = eval.Evaluate(q);
    benchmark::DoNotOptimize(r->granted);
  }
  state.SetLabel("1 mutation per " + std::to_string(queries_per_mutation) +
                 " queries [online]");
}
BENCHMARK(BM_ChurnOnline)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
