/// B7 -- The transitive-closure blow-up the paper cites in §1.
///
/// "the computation of the transitive closure has a complexity of
/// O(|V| * |E|) and the storage cost is O(|E|^2). Both approaches are
/// unacceptable for large graphs." This bench regenerates the build-time
/// and storage series against graph size, next to the O(1) lookup it buys,
/// and contrasts it with the join-index footprint on the same graphs.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sargus {
namespace bench {
namespace {

void BM_ClosureBuild(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kErdosRenyi, nodes, 3, 42, 6.0);
  CsrSnapshot csr = CsrSnapshot::Build(g);
  for (auto _ : state) {
    TransitiveClosure tc = TransitiveClosure::Build(csr, false);
    benchmark::DoNotOptimize(tc.NumComponents());
    state.counters["closure_bytes"] = static_cast<double>(tc.MemoryBytes());
    state.counters["reachable_pairs"] =
        static_cast<double>(tc.NumReachablePairs());
    state.counters["components"] = static_cast<double>(tc.NumComponents());
  }
  state.SetLabel("|V|=" + std::to_string(nodes) +
                 " |E|=" + std::to_string(g.NumEdges()));
}
BENCHMARK(BM_ClosureBuild)
    ->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

/// Our closure is SCC-compressed, so dense reciprocal graphs collapse into
/// a handful of components and look cheap. The paper's O(|E|^2) storage
/// story shows on low-reciprocity (DAG-like) graphs, where |components|
/// stays near |V| and the bitset matrix grows quadratically.
void BM_ClosureBuildDagLike(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  ErdosRenyiSpec spec;
  spec.base.num_nodes = nodes;
  spec.base.seed = 42;
  spec.base.reciprocity = 0.0;
  spec.base.assign_attributes = false;
  spec.avg_out_degree = 2.0;
  auto g = GenerateErdosRenyi(spec);
  if (!g.ok()) {
    state.SkipWithError(g.status().ToString().c_str());
    return;
  }
  CsrSnapshot csr = CsrSnapshot::Build(*g);
  for (auto _ : state) {
    TransitiveClosure tc = TransitiveClosure::Build(csr, false);
    benchmark::DoNotOptimize(tc.NumComponents());
    state.counters["closure_bytes"] = static_cast<double>(tc.MemoryBytes());
    state.counters["components"] = static_cast<double>(tc.NumComponents());
    state.counters["bytes_per_node"] =
        static_cast<double>(tc.MemoryBytes()) / static_cast<double>(nodes);
  }
  state.SetLabel("DAG-like |V|=" + std::to_string(nodes));
}
BENCHMARK(BM_ClosureBuildDagLike)
    ->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)->Arg(16000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_ClosureLookup(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const Pipeline& p = GetPipeline(GraphKind::kErdosRenyi, nodes, 3, 42, 6.0);
  Rng rng(3);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(nodes));
    benchmark::DoNotOptimize(p.closure->Reachable(u, v));
  }
}
BENCHMARK(BM_ClosureLookup)->Arg(1000)->Arg(16000);

/// Storage comparison: closure vs the paper's index stack on one graph.
void BM_StorageComparison(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const Pipeline& p = GetPipeline(GraphKind::kErdosRenyi, nodes, 3, 42, 6.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.closure->MemoryBytes());
  }
  state.counters["closure_bytes"] =
      static_cast<double>(p.closure->MemoryBytes());
  state.counters["join_index_bytes"] = static_cast<double>(
      p.oracle->MemoryBytes() + p.cluster_index->MemoryBytes() +
      p.tables.MemoryBytes() + p.lg.MemoryBytes());
  state.counters["graph_bytes"] = static_cast<double>(p.csr.MemoryBytes());
}
BENCHMARK(BM_StorageComparison)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
