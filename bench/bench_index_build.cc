/// B1 -- Index construction cost (the evaluation the paper promises in §5).
///
/// Reports, per graph family and size: time to build each stage of the
/// paper's pipeline (line graph -> SCC/DAG -> interval labels -> 2-hop ->
/// cluster join index) and the resulting index sizes. The headline shape:
/// construction is super-linear in |E| (the line graph has
/// sum(in*out) arcs), which is exactly the precomputation-vs-query-time
/// trade-off the paper positions itself around.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace sargus {
namespace bench {
namespace {

void BM_FullPipeline(benchmark::State& state) {
  const GraphKind kind = static_cast<GraphKind>(state.range(0));
  const size_t nodes = static_cast<size_t>(state.range(1));
  SocialGraph g = MakeGraph(kind, nodes, 3, 42);
  for (auto _ : state) {
    CsrSnapshot csr = CsrSnapshot::Build(g);
    LineGraph lg = LineGraph::Build(csr);
    auto oracle = LineReachabilityOracle::Build(lg);
    auto cidx = ClusterJoinIndex::Build(lg, *oracle);
    BaseTables tables = BaseTables::Build(lg);
    benchmark::DoNotOptimize(cidx->NumCenters());

    state.counters["line_vertices"] =
        static_cast<double>(lg.NumVertices());
    state.counters["line_arcs"] = static_cast<double>(lg.NumArcs());
    state.counters["dag_vertices"] =
        static_cast<double>(oracle->dag().NumVertices());
    state.counters["twohop_size"] =
        static_cast<double>(oracle->two_hop()->LabelingSize());
    state.counters["interval_count"] = static_cast<double>(
        oracle->intervals()->forward.TotalIntervals() +
        oracle->intervals()->backward.TotalIntervals());
    state.counters["index_bytes"] = static_cast<double>(
        oracle->MemoryBytes() + cidx->MemoryBytes() + tables.MemoryBytes() +
        lg.MemoryBytes());
    state.counters["centers"] = static_cast<double>(cidx->NumCenters());
  }
  state.SetLabel(std::string(GraphKindName(kind)) + " |V|=" +
                 std::to_string(nodes) + " |E|=" +
                 std::to_string(g.NumEdges()));
}
BENCHMARK(BM_FullPipeline)
    ->ArgsProduct({{static_cast<long>(GraphKind::kErdosRenyi),
                    static_cast<long>(GraphKind::kBarabasiAlbert),
                    static_cast<long>(GraphKind::kWattsStrogatz)},
                   {1000, 2000, 4000, 8000}})
    ->Unit(benchmark::kMillisecond);

// ---- Per-stage breakdown on a fixed mid-size graph -------------------------

void BM_Stage_LineGraph(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, nodes, 3, 42);
  CsrSnapshot csr = CsrSnapshot::Build(g);
  for (auto _ : state) {
    LineGraph lg = LineGraph::Build(csr);
    benchmark::DoNotOptimize(lg.NumVertices());
  }
}
BENCHMARK(BM_Stage_LineGraph)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_Stage_SccCondense(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, nodes, 3, 42);
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  for (auto _ : state) {
    SccResult scc = ComputeScc(lg);
    Dag dag = BuildCondensation(scc, lg);
    benchmark::DoNotOptimize(dag.NumVertices());
  }
}
BENCHMARK(BM_Stage_SccCondense)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_Stage_IntervalLabels(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, nodes, 3, 42);
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  SccResult scc = ComputeScc(lg);
  Dag dag = BuildCondensation(scc, lg);
  for (auto _ : state) {
    IntervalIndex idx = IntervalIndex::Build(dag);
    benchmark::DoNotOptimize(idx.forward.TotalIntervals());
  }
}
BENCHMARK(BM_Stage_IntervalLabels)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_Stage_TwoHop(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  SocialGraph g = MakeGraph(GraphKind::kBarabasiAlbert, nodes, 3, 42);
  CsrSnapshot csr = CsrSnapshot::Build(g);
  LineGraph lg = LineGraph::Build(csr);
  SccResult scc = ComputeScc(lg);
  Dag dag = BuildCondensation(scc, lg);
  for (auto _ : state) {
    auto lab = TwoHopLabeling::Build(dag);
    benchmark::DoNotOptimize(lab->LabelingSize());
    state.counters["twohop_size"] =
        static_cast<double>(lab->LabelingSize());
  }
}
BENCHMARK(BM_Stage_TwoHop)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_Stage_ClusterIndex(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const Pipeline& p = GetPipeline(GraphKind::kBarabasiAlbert, nodes);
  for (auto _ : state) {
    auto cidx = ClusterJoinIndex::Build(p.lg, *p.oracle);
    benchmark::DoNotOptimize(cidx->NumCenters());
  }
}
BENCHMARK(BM_Stage_ClusterIndex)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace sargus

BENCHMARK_MAIN();
