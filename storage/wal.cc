#include "storage/wal.h"

#include <cstring>

#include "common/checksum.h"

namespace sargus::storage {

namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

std::vector<uint8_t> EncodeWalFileHeader() {
  std::vector<uint8_t> out;
  out.reserve(kWalFileHeaderBytes);
  PutU64(out, kWalMagic);
  PutU32(out, kWalVersion);
  PutU32(out, 0);  // reserved
  return out;
}

bool HasEdgePayload(WalRecord::Kind kind) {
  return kind == WalRecord::Kind::kAddEdge ||
         kind == WalRecord::Kind::kRemoveEdge;
}

}  // namespace

std::vector<uint8_t> EncodeWalRecord(const WalRecord& rec) {
  std::vector<uint8_t> payload;
  payload.push_back(static_cast<uint8_t>(rec.kind));
  PutU64(payload, rec.generation);
  PutU64(payload, rec.overlay_version);
  if (HasEdgePayload(rec.kind)) {
    PutU32(payload, rec.src);
    PutU32(payload, rec.dst);
    PutU32(payload, static_cast<uint32_t>(rec.label.size()));
    payload.insert(payload.end(), rec.label.begin(), rec.label.end());
  }

  std::vector<uint8_t> out;
  out.reserve(4 + payload.size() + 8);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  // Checksum covers the length prefix too, so a flipped length byte is
  // caught even when it happens to point at another well-formed record.
  PutU64(out, Fnv1a64(out.data(), out.size()));
  return out;
}

Result<WalContents> ReadWal(const std::string& path) {
  SARGUS_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const std::span<const uint8_t> bytes = file.bytes();

  if (bytes.size() < kWalFileHeaderBytes) {
    return Status::InvalidArgument("wal: file shorter than its header");
  }
  if (GetU64(bytes.data()) != kWalMagic) {
    return Status::InvalidArgument("wal: bad magic");
  }
  if (GetU32(bytes.data() + 8) != kWalVersion) {
    return Status::InvalidArgument("wal: unsupported version");
  }
  if (GetU32(bytes.data() + 12) != 0) {
    // The reserved word is written as zero; anything else is damage (and
    // validating it keeps every header byte covered for the
    // corruption-matrix guarantee).
    return Status::InvalidArgument("wal: nonzero reserved header field");
  }

  WalContents out;
  size_t pos = kWalFileHeaderBytes;
  out.valid_bytes = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 4) {
      out.tail_status = Status::DataLoss("wal: torn length prefix");
      break;
    }
    const uint32_t payload_len = GetU32(bytes.data() + pos);
    if (payload_len < 1 + 8 + 8 || payload_len > kWalMaxPayloadBytes) {
      out.tail_status = Status::DataLoss("wal: implausible record length");
      break;
    }
    const size_t record_len = 4 + static_cast<size_t>(payload_len) + 8;
    if (bytes.size() - pos < record_len) {
      out.tail_status = Status::DataLoss("wal: torn record body");
      break;
    }
    const uint8_t* rec = bytes.data() + pos;
    const uint64_t want = GetU64(rec + 4 + payload_len);
    const uint64_t got = Fnv1a64(rec, 4 + payload_len);
    if (want != got) {
      out.tail_status = Status::DataLoss("wal: record checksum mismatch");
      break;
    }

    const uint8_t* p = rec + 4;
    WalRecord r;
    const uint8_t kind_byte = p[0];
    if (kind_byte < 1 || kind_byte > 4) {
      out.tail_status = Status::DataLoss("wal: unknown record kind");
      break;
    }
    r.kind = static_cast<WalRecord::Kind>(kind_byte);
    r.generation = GetU64(p + 1);
    r.overlay_version = GetU64(p + 9);
    if (HasEdgePayload(r.kind)) {
      if (payload_len < 1 + 8 + 8 + 4 + 4 + 4) {
        out.tail_status = Status::DataLoss("wal: edge record too short");
        break;
      }
      r.src = GetU32(p + 17);
      r.dst = GetU32(p + 21);
      const uint32_t name_len = GetU32(p + 25);
      if (payload_len != 1 + 8 + 8 + 4 + 4 + 4 + name_len) {
        out.tail_status = Status::DataLoss("wal: edge label length mismatch");
        break;
      }
      r.label.assign(reinterpret_cast<const char*>(p + 29), name_len);
    } else if (payload_len != 1 + 8 + 8) {
      out.tail_status = Status::DataLoss("wal: unexpected payload length");
      break;
    }
    out.records.push_back(std::move(r));
    pos += record_len;
    out.valid_bytes = pos;
  }
  return out;
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  WalSyncPolicy sync_policy,
                                  int64_t resume_size) {
  WalWriter out;
  out.sync_policy_ = sync_policy;
  SARGUS_ASSIGN_OR_RETURN(out.file_, AppendFile::Open(path, resume_size));
  if (out.file_.size() == 0) {
    const std::vector<uint8_t> header = EncodeWalFileHeader();
    SARGUS_RETURN_IF_ERROR(out.file_.Append(header));
    SARGUS_RETURN_IF_ERROR(out.file_.Sync());
  } else if (out.file_.size() < kWalFileHeaderBytes) {
    // A crash inside the initial header write; rewrite it whole.
    SARGUS_RETURN_IF_ERROR(out.file_.TruncateTo(0));
    const std::vector<uint8_t> header = EncodeWalFileHeader();
    SARGUS_RETURN_IF_ERROR(out.file_.Append(header));
    SARGUS_RETURN_IF_ERROR(out.file_.Sync());
  }
  return out;
}

Status WalWriter::Append(const WalRecord& rec) {
  const std::vector<uint8_t> bytes = EncodeWalRecord(rec);
  SARGUS_RETURN_IF_ERROR(file_.Append(bytes));
  append_count_ += 1;
  if (sync_policy_ == WalSyncPolicy::kEveryRecord) {
    sync_count_ += 1;
    return file_.Sync();
  }
  return OkStatus();
}

Status WalWriter::AppendBatch(std::span<const WalRecord> recs) {
  if (recs.empty()) return OkStatus();
  // One gathered write: sealing the batch into a single buffer keeps the
  // kernel from interleaving anything between the records, and a crash
  // mid-write tears only the suffix of this one write.
  std::vector<uint8_t> bytes;
  for (const WalRecord& rec : recs) {
    const std::vector<uint8_t> one = EncodeWalRecord(rec);
    bytes.insert(bytes.end(), one.begin(), one.end());
  }
  SARGUS_RETURN_IF_ERROR(file_.Append(bytes));
  append_count_ += recs.size();
  if (sync_policy_ != WalSyncPolicy::kNever) {
    sync_count_ += 1;
    return file_.Sync();
  }
  return OkStatus();
}

Status WalWriter::Truncate() { return file_.TruncateTo(kWalFileHeaderBytes); }

}  // namespace sargus::storage
