#include "storage/snapshot_format.h"

#include <cstring>

#include "common/checksum.h"
#include "common/file_util.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/intervals.h"
#include "index/line_oracle.h"
#include "index/scc.h"
#include "index/transitive_closure.h"
#include "index/two_hop.h"

namespace sargus::storage {

namespace {

uint64_t PageAlign(uint64_t n) {
  return (n + kBundlePageSize - 1) / kBundlePageSize * kBundlePageSize;
}

/// Fixed-offset writes into the 4096-byte header page.
void PokeU32(uint8_t* page, size_t at, uint32_t v) {
  std::memcpy(page + at, &v, sizeof v);
}
void PokeU64(uint8_t* page, size_t at, uint64_t v) {
  std::memcpy(page + at, &v, sizeof v);
}
uint32_t PeekU32(const uint8_t* page, size_t at) {
  uint32_t v;
  std::memcpy(&v, page + at, sizeof v);
  return v;
}
uint64_t PeekU64(const uint8_t* page, size_t at) {
  uint64_t v;
  std::memcpy(&v, page + at, sizeof v);
  return v;
}

}  // namespace

// ---- Serialize halves (the loader's adopt halves live in
// snapshot_loader.cc so the read path can be audited standalone) ------------

void StorageAccess::SaveGraph(const SocialGraph& g, BlobWriter& w) {
  w.PutU64(g.num_nodes_);
  // Edge slots as columns (Edge has 2 interior padding bytes).
  w.PutU64(g.edges_.size());
  for (const Edge& e : g.edges_) w.PutU32(e.src);
  for (const Edge& e : g.edges_) w.PutU32(e.dst);
  for (const Edge& e : g.edges_) w.PutU16(e.label);
  w.PutVec(g.live_);
  w.PutU64(g.num_live_edges_);
  // Dictionaries: names only; ids_ is the inverse map, rebuilt on load.
  w.PutU64(g.labels_.names_.size());
  for (const std::string& s : g.labels_.names_) w.PutString(s);
  w.PutU64(g.attrs_.names_.size());
  for (const std::string& s : g.attrs_.names_) w.PutString(s);
  w.PutU64(g.attr_columns_.size());
  for (const auto& col : g.attr_columns_) w.PutVec(col);
  // edge_lookup_ is rebuilt on load from the live slots.
}

void StorageAccess::SaveCsr(const CsrSnapshot& csr, BlobWriter& w) {
  w.PutU64(csr.num_nodes_);
  w.PutVec(csr.out_offsets_);
  // Entry has 2 padding bytes -> columns.
  w.PutU64(csr.out_entries_.size());
  for (const auto& e : csr.out_entries_) w.PutU32(e.other);
  for (const auto& e : csr.out_entries_) w.PutU16(e.label);
  for (const auto& e : csr.out_entries_) w.PutU32(e.edge);
  w.PutVec(csr.in_offsets_);
  w.PutU64(csr.in_entries_.size());
  for (const auto& e : csr.in_entries_) w.PutU32(e.other);
  for (const auto& e : csr.in_entries_) w.PutU16(e.label);
  for (const auto& e : csr.in_entries_) w.PutU32(e.edge);
}

void StorageAccess::SaveLineGraph(const LineGraph& lg, BlobWriter& w) {
  // Vertex has padding after label and bool -> columns.
  w.PutU64(lg.vertices_.size());
  for (const auto& v : lg.vertices_) w.PutU32(v.edge);
  for (const auto& v : lg.vertices_) w.PutU32(v.tail);
  for (const auto& v : lg.vertices_) w.PutU32(v.head);
  for (const auto& v : lg.vertices_) w.PutU16(v.label);
  for (const auto& v : lg.vertices_) w.PutU8(v.backward ? 1 : 0);
  w.PutVec(lg.tail_offsets_);
  w.PutVec(lg.tail_list_);
  w.PutVec(lg.head_offsets_);
  w.PutVec(lg.head_list_);
  w.PutU64(lg.num_arcs_);
  w.PutU64(lg.num_graph_nodes_);
  w.PutU8(lg.includes_backward_ ? 1 : 0);
}

void StorageAccess::SaveOracle(const LineReachabilityOracle& o,
                               BlobWriter& w) {
  // SCC result (public struct).
  w.PutVec(o.scc_.component_of);
  w.PutU32(o.scc_.num_components);
  // Condensation DAG.
  const Dag& d = o.dag_;
  w.PutU64(d.num_vertices_);
  w.PutVec(d.fwd_offsets_);
  w.PutVec(d.fwd_arcs_);
  w.PutVec(d.bwd_offsets_);
  w.PutVec(d.bwd_arcs_);
  w.PutVec(d.topo_order_);
  // Interval labels: Interval is {u32, u32}, padding-free -> bulk copy.
  w.PutVec(o.intervals_.forward.intervals_);
  w.PutVec(o.intervals_.backward.intervals_);
  // 2-hop labels.
  const TwoHopLabeling& t = o.two_hop_;
  w.PutVec(t.out_offsets_);
  w.PutVec(t.out_hubs_);
  w.PutVec(t.in_offsets_);
  w.PutVec(t.in_hubs_);
  w.PutVec(t.rank_of_);
  w.PutVec(t.vertex_of_);
}

void StorageAccess::SaveCluster(const ClusterJoinIndex& c, BlobWriter& w) {
  w.PutU64(c.num_nodes_);
  w.PutU64(c.num_oriented_labels_);
  w.PutU64(c.num_centers_);
  w.PutVec(c.offsets_);
  w.PutVec(c.members_);
  w.PutVec(c.centers_);
  w.PutVec(c.label_reach_);
}

void StorageAccess::SaveTables(const BaseTables& t, BlobWriter& w) {
  w.PutU64(t.tables_.size());
  for (const auto& rows : t.tables_) {
    // Row is {u32, u32, u32}, padding-free -> bulk copy.
    w.PutVec(rows);
  }
}

void StorageAccess::SaveClosure(const TransitiveClosure& c, BlobWriter& w) {
  w.PutU8(c.undirected_ ? 1 : 0);
  w.PutU32(c.num_components_);
  w.PutU64(c.words_);
  w.PutU64(c.reachable_pairs_);
  w.PutVec(c.component_of_);
  w.PutVec(c.component_size_);
  w.PutVec(c.reach_);
}

void StorageAccess::SaveOverlay(const DeltaOverlay& o, BlobWriter& w) {
  // Triples as columns (EdgeTriple has padding); adjacency maps are
  // rebuilt by re-staging on load. Set iteration order is arbitrary but
  // consistent within one save, which is all replay needs.
  std::vector<DeltaOverlay::EdgeTriple> added(o.added_.begin(),
                                              o.added_.end());
  std::vector<DeltaOverlay::EdgeTriple> removed(o.removed_.begin(),
                                                o.removed_.end());
  w.PutU64(added.size());
  for (const auto& t : added) w.PutU32(t.src);
  for (const auto& t : added) w.PutU32(t.dst);
  for (const auto& t : added) w.PutU16(t.label);
  w.PutU64(removed.size());
  for (const auto& t : removed) w.PutU32(t.src);
  for (const auto& t : removed) w.PutU32(t.dst);
  for (const auto& t : removed) w.PutU16(t.label);
  w.PutU32(o.staged_nodes_);
  w.PutU64(o.version_);
}

// ---- Bundle assembly --------------------------------------------------------

Status WriteBundle(const std::string& path, const BundlePayload& payload) {
  if (payload.graph == nullptr || payload.indexes == nullptr ||
      payload.overlay == nullptr) {
    return Status::InvalidArgument("WriteBundle: null payload component");
  }
  const SnapshotIndexes& idx = *payload.indexes;

  struct PendingSection {
    SectionKind kind;
    std::vector<uint8_t> bytes;
  };
  std::vector<PendingSection> sections;
  auto add = [&sections](SectionKind kind, auto&& save) {
    BlobWriter w;
    save(w);
    sections.push_back({kind, w.Take()});
  };

  add(SectionKind::kGraph,
      [&](BlobWriter& w) { StorageAccess::SaveGraph(*payload.graph, w); });
  add(SectionKind::kCsr,
      [&](BlobWriter& w) { StorageAccess::SaveCsr(idx.csr, w); });
  add(SectionKind::kLineGraph,
      [&](BlobWriter& w) { StorageAccess::SaveLineGraph(idx.lg, w); });
  if (idx.oracle != nullptr) {
    add(SectionKind::kOracle,
        [&](BlobWriter& w) { StorageAccess::SaveOracle(*idx.oracle, w); });
  }
  if (idx.cluster != nullptr) {
    add(SectionKind::kCluster,
        [&](BlobWriter& w) { StorageAccess::SaveCluster(*idx.cluster, w); });
  }
  add(SectionKind::kTables,
      [&](BlobWriter& w) { StorageAccess::SaveTables(idx.tables, w); });
  if (idx.closure != nullptr) {
    add(SectionKind::kClosure,
        [&](BlobWriter& w) { StorageAccess::SaveClosure(*idx.closure, w); });
  }
  add(SectionKind::kOverlay,
      [&](BlobWriter& w) { StorageAccess::SaveOverlay(*payload.overlay, w); });

  if (sections.size() > kBundleMaxSections) {
    return Status::Internal("WriteBundle: section table overflow");
  }

  // Lay out: header page, then each section page-aligned.
  uint64_t offset = kBundlePageSize;
  std::vector<BundleInfo::Section> table;
  table.reserve(sections.size());
  for (const PendingSection& s : sections) {
    // Sections use the striped FNV variant: they are tens of MB and
    // their verification sits on the cold-start path (the serial form
    // retires one dependent multiply per byte, ~0.5 GB/s). The header
    // page stays on plain Fnv1a64 — it is 4 KiB.
    table.push_back({s.kind, offset, s.bytes.size(),
                     StripedFnv1a64(s.bytes.data(), s.bytes.size())});
    offset = PageAlign(offset + s.bytes.size());
  }
  const uint64_t file_size = offset;

  uint64_t flags = 0;
  if (idx.join_built) flags |= kFlagJoinBuilt;
  if (idx.lg.includes_backward()) flags |= kFlagBackwardLineGraph;
  if (idx.closure != nullptr) {
    flags |= kFlagClosure;
    if (idx.closure->is_undirected()) flags |= kFlagClosureUndirected;
  }

  std::vector<uint8_t> file(file_size, 0);
  uint8_t* h = file.data();
  PokeU64(h, 0, kBundleMagic);
  PokeU32(h, 8, kBundleVersion);
  PokeU32(h, 12, kBundlePageSize);
  PokeU64(h, 16, file_size);
  PokeU64(h, 24, payload.stamp.generation);
  PokeU64(h, 32, payload.stamp.overlay_version);
  PokeU64(h, 40, flags);
  PokeU64(h, 48, payload.compact_threshold);
  PokeU32(h, 56, static_cast<uint32_t>(sections.size()));
  PokeU32(h, 60, 0);  // reserved
  for (size_t i = 0; i < table.size(); ++i) {
    const size_t at = kBundleSectionTableOffset + i * kBundleSectionEntryBytes;
    PokeU32(h, at, static_cast<uint32_t>(table[i].kind));
    PokeU32(h, at + 4, 0);  // reserved
    PokeU64(h, at + 8, table[i].offset);
    PokeU64(h, at + 16, table[i].size);
    PokeU64(h, at + 24, table[i].checksum);
  }
  PokeU64(h, kBundlePageSize - 8, Fnv1a64(h, kBundlePageSize - 8));

  for (size_t i = 0; i < sections.size(); ++i) {
    std::memcpy(file.data() + table[i].offset, sections[i].bytes.data(),
                sections[i].bytes.size());
  }

  return WriteFileAtomic(path, file);
}

Result<BundleInfo> ReadBundleInfo(const std::string& path) {
  SARGUS_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  return ParseBundleHeader(file.bytes());
}

Result<BundleInfo> ParseBundleHeader(std::span<const uint8_t> bytes) {
  if (bytes.size() < kBundlePageSize) {
    return Status::DataLoss("bundle: shorter than one header page");
  }
  const uint8_t* h = bytes.data();
  if (PeekU64(h, 0) != kBundleMagic) {
    return Status::DataLoss("bundle: bad magic");
  }
  const uint64_t want = PeekU64(h, kBundlePageSize - 8);
  if (want != Fnv1a64(h, kBundlePageSize - 8)) {
    return Status::DataLoss("bundle: header checksum mismatch");
  }
  BundleInfo info;
  info.version = PeekU32(h, 8);
  info.page_size = PeekU32(h, 12);
  if (info.version != kBundleVersion) {
    return Status::DataLoss("bundle: unsupported version");
  }
  if (info.page_size != kBundlePageSize) {
    return Status::DataLoss("bundle: unsupported page size");
  }
  info.file_size = PeekU64(h, 16);
  if (info.file_size != bytes.size()) {
    return Status::DataLoss("bundle: file size mismatch");
  }
  info.stamp.generation = PeekU64(h, 24);
  info.stamp.overlay_version = PeekU64(h, 32);
  info.flags = PeekU64(h, 40);
  info.compact_threshold = PeekU64(h, 48);
  const uint32_t num_sections = PeekU32(h, 56);
  if (num_sections > kBundleMaxSections) {
    return Status::DataLoss("bundle: section count out of range");
  }
  for (uint32_t i = 0; i < num_sections; ++i) {
    const size_t at = kBundleSectionTableOffset + i * kBundleSectionEntryBytes;
    BundleInfo::Section s;
    s.kind = static_cast<SectionKind>(PeekU32(h, at));
    s.offset = PeekU64(h, at + 8);
    s.size = PeekU64(h, at + 16);
    s.checksum = PeekU64(h, at + 24);
    if (s.offset % kBundlePageSize != 0 || s.offset > info.file_size ||
        s.size > info.file_size - s.offset) {
      return Status::DataLoss("bundle: section bounds out of range");
    }
    info.sections.push_back(s);
  }
  return info;
}

}  // namespace sargus::storage
