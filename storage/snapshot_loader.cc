#include "storage/snapshot_loader.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/file_util.h"
#include "index/base_tables.h"
#include "index/cluster_index.h"
#include "index/intervals.h"
#include "index/line_oracle.h"
#include "index/scc.h"
#include "index/transitive_closure.h"
#include "index/two_hop.h"

namespace sargus::storage {

namespace {

/// A reader that ended mid-field, or a section with trailing bytes,
/// means the writer and loader disagree about the layout — surfaced as
/// corruption rather than silently adopting a half-read structure.
Status FinishSection(const BlobReader& r, const char* what) {
  if (!r.ok()) {
    return Status::DataLoss(std::string("bundle: truncated ") + what +
                            " section");
  }
  if (r.Remaining() != 0) {
    return Status::DataLoss(std::string("bundle: trailing bytes in ") + what +
                            " section");
  }
  return OkStatus();
}

}  // namespace

// ---- Adopt halves (serialize halves live in snapshot_format.cc) -----------

Status StorageAccess::LoadGraph(BlobReader& r, SocialGraph* g) {
  g->num_nodes_ = r.GetU64();
  const uint64_t num_slots = r.GetU64();
  if (!r.ok() || num_slots > r.Remaining() / sizeof(uint32_t)) {
    return Status::DataLoss("bundle: graph edge count out of range");
  }
  g->edges_.resize(num_slots);
  for (auto& e : g->edges_) e.src = r.GetU32();
  for (auto& e : g->edges_) e.dst = r.GetU32();
  for (auto& e : g->edges_) e.label = r.GetU16();
  r.GetVec(&g->live_);
  g->num_live_edges_ = r.GetU64();
  if (!r.ok() || g->live_.size() != g->edges_.size()) {
    return Status::DataLoss("bundle: graph live bitmap size mismatch");
  }

  auto load_dict = [&r](NameDictionary* dict) {
    const uint64_t n = r.GetU64();
    if (!r.ok() || n > r.Remaining()) return;  // each name is >= 4 bytes
    dict->names_.resize(n);
    dict->ids_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      r.GetString(&dict->names_[i]);
      dict->ids_[dict->names_[i]] = static_cast<uint16_t>(i);
    }
  };
  load_dict(&g->labels_);
  load_dict(&g->attrs_);

  const uint64_t num_columns = r.GetU64();
  if (!r.ok() || num_columns > r.Remaining()) {
    return Status::DataLoss("bundle: graph attribute column count");
  }
  g->attr_columns_.resize(num_columns);
  for (auto& col : g->attr_columns_) r.GetVec(&col);

  // Do NOT rebuild the triple lookup here: hashing every live edge back
  // into the map costs about as much as the index rebuild the bundle
  // exists to avoid (~1s at 1M edges). Mark it stale instead; the graph
  // rematerializes it on first use, which is always on the mutation/fold
  // path, never on the cold-start-to-first-query path.
  g->edge_lookup_.clear();
  g->edge_lookup_stale_ = true;
  return FinishSection(r, "graph");
}

Status StorageAccess::LoadCsr(BlobReader& r, CsrSnapshot* csr) {
  csr->num_nodes_ = r.GetU64();
  r.GetVec(&csr->out_offsets_);
  const uint64_t num_out = r.GetU64();
  if (!r.ok() || num_out > r.Remaining() / sizeof(uint32_t)) {
    return Status::DataLoss("bundle: csr out-entry count out of range");
  }
  csr->out_entries_.resize(num_out);
  for (auto& e : csr->out_entries_) e.other = r.GetU32();
  for (auto& e : csr->out_entries_) e.label = r.GetU16();
  for (auto& e : csr->out_entries_) e.edge = r.GetU32();
  r.GetVec(&csr->in_offsets_);
  const uint64_t num_in = r.GetU64();
  if (!r.ok() || num_in > r.Remaining() / sizeof(uint32_t)) {
    return Status::DataLoss("bundle: csr in-entry count out of range");
  }
  csr->in_entries_.resize(num_in);
  for (auto& e : csr->in_entries_) e.other = r.GetU32();
  for (auto& e : csr->in_entries_) e.label = r.GetU16();
  for (auto& e : csr->in_entries_) e.edge = r.GetU32();
  if (csr->out_offsets_.size() != csr->num_nodes_ + 1 ||
      csr->in_offsets_.size() != csr->num_nodes_ + 1) {
    return Status::DataLoss("bundle: csr offset array size mismatch");
  }
  return FinishSection(r, "csr");
}

Status StorageAccess::LoadLineGraph(BlobReader& r, LineGraph* lg) {
  const uint64_t num_vertices = r.GetU64();
  if (!r.ok() || num_vertices > r.Remaining() / sizeof(uint32_t)) {
    return Status::DataLoss("bundle: line-graph vertex count out of range");
  }
  lg->vertices_.resize(num_vertices);
  for (auto& v : lg->vertices_) v.edge = r.GetU32();
  for (auto& v : lg->vertices_) v.tail = r.GetU32();
  for (auto& v : lg->vertices_) v.head = r.GetU32();
  for (auto& v : lg->vertices_) v.label = r.GetU16();
  for (auto& v : lg->vertices_) v.backward = r.GetU8() != 0;
  r.GetVec(&lg->tail_offsets_);
  r.GetVec(&lg->tail_list_);
  r.GetVec(&lg->head_offsets_);
  r.GetVec(&lg->head_list_);
  lg->num_arcs_ = r.GetU64();
  lg->num_graph_nodes_ = r.GetU64();
  lg->includes_backward_ = r.GetU8() != 0;
  return FinishSection(r, "line-graph");
}

Status StorageAccess::LoadOracle(BlobReader& r, LineReachabilityOracle* o) {
  r.GetVec(&o->scc_.component_of);
  o->scc_.num_components = r.GetU32();
  Dag& d = o->dag_;
  d.num_vertices_ = r.GetU64();
  r.GetVec(&d.fwd_offsets_);
  r.GetVec(&d.fwd_arcs_);
  r.GetVec(&d.bwd_offsets_);
  r.GetVec(&d.bwd_arcs_);
  r.GetVec(&d.topo_order_);
  r.GetVec(&o->intervals_.forward.intervals_);
  r.GetVec(&o->intervals_.backward.intervals_);
  TwoHopLabeling& t = o->two_hop_;
  r.GetVec(&t.out_offsets_);
  r.GetVec(&t.out_hubs_);
  r.GetVec(&t.in_offsets_);
  r.GetVec(&t.in_hubs_);
  r.GetVec(&t.rank_of_);
  r.GetVec(&t.vertex_of_);
  return FinishSection(r, "oracle");
}

Status StorageAccess::LoadCluster(BlobReader& r, ClusterJoinIndex* c) {
  c->num_nodes_ = r.GetU64();
  c->num_oriented_labels_ = r.GetU64();
  c->num_centers_ = r.GetU64();
  r.GetVec(&c->offsets_);
  r.GetVec(&c->members_);
  r.GetVec(&c->centers_);
  r.GetVec(&c->label_reach_);
  return FinishSection(r, "cluster");
}

Status StorageAccess::LoadTables(BlobReader& r, BaseTables* t) {
  const uint64_t num_tables = r.GetU64();
  if (!r.ok() || num_tables > r.Remaining()) {
    return Status::DataLoss("bundle: base-table count out of range");
  }
  t->tables_.resize(num_tables);
  for (auto& rows : t->tables_) r.GetVec(&rows);
  return FinishSection(r, "tables");
}

Status StorageAccess::LoadClosure(BlobReader& r, TransitiveClosure* c) {
  c->undirected_ = r.GetU8() != 0;
  c->num_components_ = r.GetU32();
  c->words_ = r.GetU64();
  c->reachable_pairs_ = r.GetU64();
  r.GetVec(&c->component_of_);
  r.GetVec(&c->component_size_);
  r.GetVec(&c->reach_);
  return FinishSection(r, "closure");
}

Status StorageAccess::LoadOverlay(BlobReader& r, DeltaOverlay* o) {
  auto load_triples = [&r](std::vector<DeltaOverlay::EdgeTriple>* out) {
    const uint64_t n = r.GetU64();
    if (!r.ok() || n > r.Remaining() / sizeof(uint32_t)) {
      return false;
    }
    out->resize(n);
    for (auto& t : *out) t.src = r.GetU32();
    for (auto& t : *out) t.dst = r.GetU32();
    for (auto& t : *out) t.label = r.GetU16();
    return true;
  };
  std::vector<DeltaOverlay::EdgeTriple> added;
  std::vector<DeltaOverlay::EdgeTriple> removed;
  if (!load_triples(&added) || !load_triples(&removed)) {
    return Status::DataLoss("bundle: overlay triple count out of range");
  }
  const uint32_t staged_nodes = r.GetU32();
  const uint64_t version = r.GetU64();
  SARGUS_RETURN_IF_ERROR(FinishSection(r, "overlay"));

  // Re-stage to rebuild the adjacency maps, then restore the exact
  // version counter (each Stage call bumped it).
  for (const auto& t : added) o->StageAdd(t.src, t.dst, t.label);
  for (const auto& t : removed) o->StageRemove(t.src, t.dst, t.label);
  for (uint32_t i = 0; i < staged_nodes; ++i) o->StageNode();
  o->version_ = version;
  return OkStatus();
}

// ---- Whole-bundle load ------------------------------------------------------

Result<LoadedBundle> LoadBundle(const std::string& path) {
  SARGUS_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const std::span<const uint8_t> bytes = file.bytes();
  SARGUS_ASSIGN_OR_RETURN(BundleInfo info, ParseBundleHeader(bytes));

  LoadedBundle out;
  out.indexes = std::make_shared<SnapshotIndexes>();
  out.stamp = info.stamp;
  out.flags = info.flags;
  out.compact_threshold = info.compact_threshold;
  out.indexes->join_built = (info.flags & kFlagJoinBuilt) != 0;

  // Screen the section table serially (duplicates, unknown kinds), and
  // pre-allocate the owned index structures, before fanning out.
  uint64_t seen = 0;
  for (const BundleInfo::Section& s : info.sections) {
    if (s.kind < SectionKind::kGraph || s.kind > SectionKind::kOverlay) {
      return Status::DataLoss("bundle: unknown section kind");
    }
    const uint64_t kind_bit = 1ULL << static_cast<uint32_t>(s.kind);
    if (seen & kind_bit) {
      return Status::DataLoss("bundle: duplicate section");
    }
    seen |= kind_bit;
    if (s.kind == SectionKind::kOracle) {
      out.indexes->oracle = std::make_unique<LineReachabilityOracle>();
    } else if (s.kind == SectionKind::kCluster) {
      out.indexes->cluster = std::make_unique<ClusterJoinIndex>();
    } else if (s.kind == SectionKind::kClosure) {
      out.indexes->closure = std::make_unique<TransitiveClosure>();
    }
  }

  // Verify and adopt sections concurrently when the machine has the
  // cores for it: checksumming is one pass per section and adoption is
  // a chain of memcpys, so on a multi-core box the bundle-wide wall
  // time collapses to the cost of the largest section. Sections write
  // to disjoint destinations, so the fan-out is race-free; on a
  // single-CPU box the loop runs inline and pays no thread overhead.
  std::vector<Status> statuses(info.sections.size());
  auto run_section = [&bytes, &info, &out, &statuses](size_t i) {
    const BundleInfo::Section& s = info.sections[i];
    const std::span<const uint8_t> sec = bytes.subspan(s.offset, s.size);
    if (StripedFnv1a64(sec.data(), sec.size()) != s.checksum) {
      statuses[i] = Status::DataLoss("bundle: section checksum mismatch");
      return;
    }
    BlobReader r(sec);
    switch (s.kind) {
      case SectionKind::kGraph:
        statuses[i] = StorageAccess::LoadGraph(r, &out.graph);
        break;
      case SectionKind::kCsr:
        statuses[i] = StorageAccess::LoadCsr(r, &out.indexes->csr);
        break;
      case SectionKind::kLineGraph:
        statuses[i] = StorageAccess::LoadLineGraph(r, &out.indexes->lg);
        break;
      case SectionKind::kOracle:
        statuses[i] = StorageAccess::LoadOracle(r, out.indexes->oracle.get());
        break;
      case SectionKind::kCluster:
        statuses[i] =
            StorageAccess::LoadCluster(r, out.indexes->cluster.get());
        break;
      case SectionKind::kTables:
        statuses[i] = StorageAccess::LoadTables(r, &out.indexes->tables);
        break;
      case SectionKind::kClosure:
        statuses[i] =
            StorageAccess::LoadClosure(r, out.indexes->closure.get());
        break;
      case SectionKind::kOverlay:
        statuses[i] = StorageAccess::LoadOverlay(r, &out.overlay);
        break;
    }
  };
  const size_t num_workers =
      std::min<size_t>(info.sections.size(),
                       std::max(1u, std::thread::hardware_concurrency()));
  if (num_workers <= 1) {
    for (size_t i = 0; i < info.sections.size(); ++i) run_section(i);
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&next, &run_section, &info] {
        for (size_t i; (i = next.fetch_add(1)) < info.sections.size();) {
          run_section(i);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  for (const Status& st : statuses) {
    SARGUS_RETURN_IF_ERROR(st);
  }

  auto require = [seen](SectionKind kind) {
    return (seen & (1ULL << static_cast<uint32_t>(kind))) != 0;
  };
  if (!require(SectionKind::kGraph) || !require(SectionKind::kCsr) ||
      !require(SectionKind::kLineGraph) || !require(SectionKind::kTables) ||
      !require(SectionKind::kOverlay)) {
    return Status::DataLoss("bundle: required section missing");
  }
  if (out.indexes->join_built &&
      (out.indexes->oracle == nullptr || out.indexes->cluster == nullptr)) {
    return Status::DataLoss("bundle: join stack flagged but sections missing");
  }
  if (((info.flags & kFlagClosure) != 0) != (out.indexes->closure != nullptr)) {
    return Status::DataLoss("bundle: closure flag / section mismatch");
  }
  return out;
}

}  // namespace sargus::storage
