#ifndef SARGUS_STORAGE_WAL_H_
#define SARGUS_STORAGE_WAL_H_

/// \file wal.h
/// \brief The mutation write-ahead log: an append-only stream of
/// length-prefixed, checksummed writer operations.
///
/// Every engine mutation (AddEdge / RemoveEdge / AddNode / policy
/// refresh) appends one record *after* it is staged and *before* the
/// call returns, stamped with the (snapshot_generation, overlay_version)
/// the mutation landed in — the same stamps AccessDecision carries. A
/// snapshot bundle (storage/snapshot_format.h) is stamped the same way,
/// which yields the recovery rule:
///
///     replay a record  iff  (gen, ver) > (bundle.gen, bundle.ver)
///                           (lexicographic)
///
/// Records at or below the bundle stamp are *covered* — their effect is
/// already inside the bundle's graph/overlay — and must be skipped, not
/// double-applied. That makes the crash window between "bundle
/// published" and "WAL truncated" safe by construction: a reopen sees
/// covered records and ignores them.
///
/// Record layout (little-endian):
///
///     u32 payload_len            | bytes from `kind` to payload end
///     u8  kind                   |
///     u64 generation             |
///     u64 overlay_version        |  payload
///     kind-specific fields       |
///     u64 FNV-1a-64              | over payload_len + payload
///
/// AddEdge/RemoveEdge carry the label *name* (not the id): a label
/// interned after the last snapshot save does not exist in the bundle's
/// dictionary, so replay re-interns by name exactly like the original
/// call did. Torn-tail semantics: ReadWal returns the longest clean
/// record prefix; a record that fails its length bound or checksum stops
/// the scan with `tail_status` describing why and `valid_bytes` marking
/// the truncation point (the writer reopens the log truncated there).
/// Any single-bit flip in the stream is caught by a record checksum —
/// the storage corruption-matrix test pins this.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace sargus::storage {

inline constexpr uint64_t kWalMagic = 0x314C41575347'5253ULL;  // "SRGSWAL1"
inline constexpr uint32_t kWalVersion = 1;
/// Magic + version + reserved u32.
inline constexpr size_t kWalFileHeaderBytes = 16;
/// Cap on one record's payload; anything larger is corruption.
inline constexpr uint32_t kWalMaxPayloadBytes = 1 << 20;

/// When appends are made durable.
///
///  * kEveryRecord — fdatasync each Append (a crashed writer loses
///    nothing it acknowledged). AppendBatch still syncs only once, at
///    the end of the batch: durability is equivalent because nothing in
///    the batch is acknowledged until AppendBatch returns.
///  * kGroupCommit — fdatasync once per AppendBatch; single Appends are
///    NOT synced (they ride with the next batch sync, an explicit
///    Sync(), or the OS). Pair with the engine's MutationQueue, whose
///    tickets complete only after the batch sync — then an acknowledged
///    mutation still survives a crash, at one fsync per batch instead
///    of one per record.
///  * kNever — leave flushing to the OS (fast, loses the unsynced tail
///    on power failure — still never corrupts: the tail, torn batch
///    included, is detected and truncated to the last whole record on
///    reopen).
enum class WalSyncPolicy { kEveryRecord, kGroupCommit, kNever };

struct WalRecord {
  enum class Kind : uint8_t {
    kAddEdge = 1,
    kRemoveEdge = 2,
    kAddNode = 3,
    kPolicyRefresh = 4,
  };
  Kind kind = Kind::kAddNode;
  /// Stamp of the published state the mutation landed in.
  uint64_t generation = 0;
  uint64_t overlay_version = 0;
  // kAddEdge / kRemoveEdge only:
  NodeId src = 0;
  NodeId dst = 0;
  std::string label;
};

/// Result of scanning a WAL file.
struct WalContents {
  std::vector<WalRecord> records;
  /// Offset of the first byte past the last clean record — where a
  /// recovering writer resumes appending.
  uint64_t valid_bytes = 0;
  /// OK when the scan ended exactly at EOF; otherwise why it stopped
  /// (torn tail or corruption). Records before the stop point are
  /// intact either way — a bad record never makes it into `records`.
  Status tail_status = OkStatus();
};

/// Encodes one record (for tests that build WAL bytes by hand).
std::vector<uint8_t> EncodeWalRecord(const WalRecord& rec);

/// Scans `path`. kNotFound when the file does not exist; kInvalidArgument
/// when the file header itself is damaged. Never crashes on garbage.
Result<WalContents> ReadWal(const std::string& path);

/// Appender. Open creates the file (writing the header) or resumes an
/// existing one at `resume_size` (truncating a torn tail detected by
/// ReadWal).
class WalWriter {
 public:
  static Result<WalWriter> Open(const std::string& path,
                                WalSyncPolicy sync_policy,
                                int64_t resume_size = -1);

  WalWriter() = default;
  WalWriter(WalWriter&&) noexcept = default;
  WalWriter& operator=(WalWriter&&) noexcept = default;

  /// Appends one record (and fdatasyncs under kEveryRecord only).
  Status Append(const WalRecord& rec);

  /// Group commit: seals all of `recs` into one gathered write and
  /// fdatasyncs ONCE at the end (unless kNever). On return every record
  /// of the batch is durable per the policy — the engine completes the
  /// batch's tickets only after this returns. A crash mid-write leaves
  /// a torn batch tail that ReadWal truncates to the last whole record;
  /// record boundaries within the batch are preserved (each record
  /// carries its own length prefix + checksum), so a prefix of the
  /// batch can survive — which is safe, because nothing was
  /// acknowledged.
  Status AppendBatch(std::span<const WalRecord> recs);

  /// Drops every record: the log shrinks back to its file header. Called
  /// after a snapshot bundle covering the log is durably published.
  Status Truncate();

  Status Sync() { return file_.Sync(); }
  uint64_t size() const { return file_.size(); }
  bool is_open() const { return file_.is_open(); }

  /// Records appended (Append + AppendBatch) and fdatasyncs issued by
  /// appends over this writer's lifetime — the "one fsync per batch"
  /// tests read these. Truncate/Open-header syncs are not counted.
  uint64_t append_count() const { return append_count_; }
  uint64_t sync_count() const { return sync_count_; }

 private:
  AppendFile file_;
  WalSyncPolicy sync_policy_ = WalSyncPolicy::kEveryRecord;
  uint64_t append_count_ = 0;
  uint64_t sync_count_ = 0;
};

}  // namespace sargus::storage

#endif  // SARGUS_STORAGE_WAL_H_
