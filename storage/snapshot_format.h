#ifndef SARGUS_STORAGE_SNAPSHOT_FORMAT_H_
#define SARGUS_STORAGE_SNAPSHOT_FORMAT_H_

/// \file snapshot_format.h
/// \brief The on-disk snapshot bundle: one versioned, page-aligned,
/// checksummed file holding everything a serving engine needs — graph,
/// overlay, and the entire prebuilt index stack — so a restart is an
/// mmap + verify + adopt, never an index *computation*.
///
/// File layout (little-endian throughout; the build static_asserts it):
///
///     page 0 (4096 B)   header: magic, version, stamp, flags,
///                       section table, FNV-1a-64 over bytes [0, 4088)
///                       stored in the page's last 8 bytes
///     page 1..          sections, each page-aligned and zero-padded
///                       to the next page boundary
///
/// Every section carries its own FNV-1a-64 digest (the eight-lane
/// striped form, common/checksum.h StripedFnv1a64 — sections are tens
/// of MB and verification sits on the cold-start path) in the section
/// table, so a loader re-verifies each byte range independently before
/// adopting it
/// (the corruption-matrix test flips bits everywhere and expects an
/// explicit kDataLoss, never a crash or a wrong decision). Structs with
/// interior padding (Edge, CsrSnapshot::Entry, LineGraph::Vertex) are
/// serialized as parallel scalar columns — raw struct memcpy would
/// checksum uninitialized padding bytes. Padding-free structs and plain
/// scalar vectors are bulk-memcpy'd.
///
/// Publication is atomic: SnapshotWriter assembles the file in memory
/// and hands it to WriteFileAtomic (temp + fsync + rename + dir fsync),
/// so `snapshot.sargus` is always either the previous complete bundle
/// or the new complete bundle.
///
/// The header carries the (generation, overlay_version) stamp of the
/// engine state the bundle captured — the coordinate the WAL replay
/// rule compares against (storage/wal.h).

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/read_view.h"
#include "graph/delta_overlay.h"
#include "graph/social_graph.h"

namespace sargus::storage {

static_assert(std::endian::native == std::endian::little,
              "snapshot bundles are little-endian on-disk; big-endian "
              "hosts need byte-swapping load/save paths");

/// Durability directory layout: one bundle, one WAL.
inline constexpr char kSnapshotFileName[] = "snapshot.sargus";
inline constexpr char kWalFileName[] = "wal.log";

inline constexpr uint64_t kBundleMagic = 0x3150414E53475253ULL;  // "SRGSNAP1"
inline constexpr uint32_t kBundleVersion = 1;
inline constexpr uint32_t kBundlePageSize = 4096;
/// Fixed header fields end here; section table entries follow.
inline constexpr size_t kBundleSectionTableOffset = 64;
inline constexpr size_t kBundleSectionEntryBytes = 32;
inline constexpr size_t kBundleMaxSections =
    (kBundlePageSize - 8 - kBundleSectionTableOffset) /
    kBundleSectionEntryBytes;

/// Bundle capability flags (header `flags` field). Redundant with the
/// section list, kept so option validation reads the header only.
inline constexpr uint64_t kFlagJoinBuilt = 1ULL << 0;
inline constexpr uint64_t kFlagBackwardLineGraph = 1ULL << 1;
inline constexpr uint64_t kFlagClosure = 1ULL << 2;
inline constexpr uint64_t kFlagClosureUndirected = 1ULL << 3;

enum class SectionKind : uint32_t {
  kGraph = 1,
  kCsr = 2,
  kLineGraph = 3,
  kOracle = 4,
  kCluster = 5,
  kTables = 6,
  kClosure = 7,
  kOverlay = 8,
};

/// The (snapshot_generation, overlay_version) coordinate a bundle or a
/// WAL record was captured at — the same stamps AccessDecision carries.
struct SnapshotStamp {
  uint64_t generation = 0;
  uint64_t overlay_version = 0;

  /// Lexicographic order: the WAL replay rule is `record > bundle`.
  friend bool operator<=(const SnapshotStamp& a, const SnapshotStamp& b) {
    return a.generation < b.generation ||
           (a.generation == b.generation &&
            a.overlay_version <= b.overlay_version);
  }
};

/// What the engine hands the writer. All pointers are borrowed for the
/// duration of WriteBundle; `indexes` members may be null when never
/// built (online-only configs skip the join stack, the prefilter is
/// optional).
struct BundlePayload {
  const SocialGraph* graph = nullptr;
  const SnapshotIndexes* indexes = nullptr;
  const DeltaOverlay* overlay = nullptr;
  SnapshotStamp stamp;
  /// Effective auto-compaction threshold at save time, restored on open.
  uint64_t compact_threshold = 0;
};

/// Serializes `payload` and atomically publishes it at `path`.
Status WriteBundle(const std::string& path, const BundlePayload& payload);

/// Header-only inspection (the corruption tests target specific
/// sections by offset through this).
struct BundleInfo {
  uint32_t version = 0;
  uint32_t page_size = 0;
  uint64_t file_size = 0;
  SnapshotStamp stamp;
  uint64_t flags = 0;
  uint64_t compact_threshold = 0;
  struct Section {
    SectionKind kind;
    uint64_t offset;
    uint64_t size;
    uint64_t checksum;
  };
  std::vector<Section> sections;
};

/// Reads and verifies only the header page of `path`.
Result<BundleInfo> ReadBundleInfo(const std::string& path);

/// Verifies the header page of an already-mapped bundle (magic, version,
/// header checksum, section-table bounds). The loader and ReadBundleInfo
/// share this so "valid header" means one thing.
Result<BundleInfo> ParseBundleHeader(std::span<const uint8_t> bytes);

// ---- Byte codec -------------------------------------------------------------

/// Growing little-endian sink the serialize halves write sections into.
class BlobWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof v); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof v); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof v); }

  /// Length-prefixed bulk copy. T must be trivially copyable with no
  /// interior padding (padding bytes would make checksums depend on
  /// stale stack memory); padded structs go through per-field columns.
  template <typename T>
  void PutVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    if (!s.empty()) PutRaw(s.data(), s.size());
  }

  std::span<const uint8_t> bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  void PutRaw(const void* p, size_t n) {
    const size_t at = bytes_.size();
    bytes_.resize(at + n);
    std::memcpy(bytes_.data() + at, p, n);
  }
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked cursor over one verified section. Overruns latch
/// `ok() == false` and return zeros instead of reading past the span, so
/// a malformed section (writer bug; checksummed corruption cannot reach
/// here) degrades to a Status at the call site, never UB.
class BlobReader {
 public:
  explicit BlobReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t GetU8() {
    uint8_t v = 0;
    GetRaw(&v, sizeof v);
    return v;
  }
  uint16_t GetU16() {
    uint16_t v = 0;
    GetRaw(&v, sizeof v);
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof v);
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof v);
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetRaw(&v, sizeof v);
    return v;
  }

  template <typename T>
  void GetVec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t count = GetU64();
    if (!ok_ || count > Remaining() / sizeof(T)) {
      ok_ = false;
      out->clear();
      return;
    }
    out->resize(count);
    if (count > 0) GetRaw(out->data(), count * sizeof(T));
  }

  void GetString(std::string* out) {
    const uint32_t len = GetU32();
    if (!ok_ || len > Remaining()) {
      ok_ = false;
      out->clear();
      return;
    }
    out->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
  }

  size_t Remaining() const { return bytes_.size() - pos_; }
  bool ok() const { return ok_; }

 private:
  void GetRaw(void* p, size_t n) {
    if (!ok_ || n > Remaining()) {
      ok_ = false;
      return;
    }
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Private-member bridge --------------------------------------------------

/// The one friend every serialized class grants. Save halves live in
/// snapshot_format.cc, load halves in snapshot_loader.cc; keeping both
/// behind a single named bridge means a class audits exactly one line
/// to know who can see its internals.
struct StorageAccess {
  static void SaveGraph(const SocialGraph& g, BlobWriter& w);
  static Status LoadGraph(BlobReader& r, SocialGraph* g);

  static void SaveCsr(const CsrSnapshot& csr, BlobWriter& w);
  static Status LoadCsr(BlobReader& r, CsrSnapshot* csr);

  static void SaveLineGraph(const LineGraph& lg, BlobWriter& w);
  static Status LoadLineGraph(BlobReader& r, LineGraph* lg);

  static void SaveOracle(const LineReachabilityOracle& o, BlobWriter& w);
  static Status LoadOracle(BlobReader& r, LineReachabilityOracle* o);

  static void SaveCluster(const ClusterJoinIndex& c, BlobWriter& w);
  static Status LoadCluster(BlobReader& r, ClusterJoinIndex* c);

  static void SaveTables(const BaseTables& t, BlobWriter& w);
  static Status LoadTables(BlobReader& r, BaseTables* t);

  static void SaveClosure(const TransitiveClosure& c, BlobWriter& w);
  static Status LoadClosure(BlobReader& r, TransitiveClosure* c);

  static void SaveOverlay(const DeltaOverlay& o, BlobWriter& w);
  static Status LoadOverlay(BlobReader& r, DeltaOverlay* o);
};

}  // namespace sargus::storage

#endif  // SARGUS_STORAGE_SNAPSHOT_FORMAT_H_
