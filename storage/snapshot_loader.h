#ifndef SARGUS_STORAGE_SNAPSHOT_LOADER_H_
#define SARGUS_STORAGE_SNAPSHOT_LOADER_H_

/// \file snapshot_loader.h
/// \brief Reconstructs a serving state from a snapshot bundle: mmap,
/// verify every checksum, adopt every section.
///
/// The load path never *computes* an index — no Tarjan, no label sweep,
/// no CSR counting sort. Each section is re-verified against its header
/// checksum and then bulk-copied into the live structures (the accepted
/// first cut; a zero-copy mmap-backed variant would swap the copies for
/// span views over the mapping). The only reconstruction work is the
/// cheap inverse maps serialization deliberately drops: dictionary
/// name->id maps, the graph's edge-triple lookup, and the overlay's
/// adjacency (rebuilt by re-staging its triples).
///
/// Every failure — missing file, bad magic, checksum mismatch, section
/// bounds out of range, truncated section payload — surfaces as an
/// explicit Status (kDataLoss for corruption). The corruption-matrix
/// test drives >=10k seeded bit flips through this path.

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/snapshot_format.h"

namespace sargus::storage {

/// A fully adopted bundle, ready for AccessControlEngine::OpenFromDir to
/// install. `indexes` is mutable here (the loader fills it); the engine
/// freezes it behind shared_ptr<const> on install.
struct LoadedBundle {
  SocialGraph graph;
  std::shared_ptr<SnapshotIndexes> indexes;
  DeltaOverlay overlay;
  SnapshotStamp stamp;
  uint64_t flags = 0;
  uint64_t compact_threshold = 0;
};

/// Maps `path`, verifies header + every section checksum, adopts all
/// sections. kNotFound when the file is absent; kDataLoss on any
/// corruption.
Result<LoadedBundle> LoadBundle(const std::string& path);

}  // namespace sargus::storage

#endif  // SARGUS_STORAGE_SNAPSHOT_LOADER_H_
